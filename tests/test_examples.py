"""Smoke tests: every shipped example runs to completion.

Executed as subprocesses so they exercise the real public entry points
(imports, `__main__` blocks) exactly as a user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(example):
    completed = subprocess.run(
        [sys.executable, str(example)], capture_output=True, text=True,
        timeout=300)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate their output"


def test_examples_inventory():
    """At least the documented set of examples ships."""
    names = {path.stem for path in EXAMPLES}
    assert {"quickstart", "out_of_core_assembly", "distributed_assembly",
            "repeat_collapse", "baseline_comparison",
            "error_correction"} <= names

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AssemblyConfig, MemoryConfig
from repro.seq.datasets import tiny_dataset
from repro.seq.records import ReadBatch
from repro.seq.simulate import ReadSimulator, simulate_genome


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(scope="session")
def tiny(tmp_path_factory):
    """A miniature materialized dataset plus its in-memory reads.

    Session-scoped: the artefacts are read-only; assemblies use private
    workdirs.
    """
    root = tmp_path_factory.mktemp("tiny-data")
    return tiny_dataset(root, genome_length=2000, read_length=50,
                        coverage=20.0, min_overlap=25, seed=11)


@pytest.fixture(scope="session")
def tiny_md(tiny):
    return tiny[0]


@pytest.fixture(scope="session")
def tiny_batch(tiny) -> ReadBatch:
    return tiny[1]


@pytest.fixture()
def laptop_config() -> AssemblyConfig:
    """Default single-batch configuration for small functional tests."""
    return AssemblyConfig(min_overlap=25)


@pytest.fixture()
def cramped_config() -> AssemblyConfig:
    """A configuration forcing multi-pass external sorting via the explicit
    block-size overrides (the same knobs the Fig. 8 sweep uses)."""
    return AssemblyConfig(
        min_overlap=25,
        host_block_pairs=500,
        device_block_pairs=128,
    )


def make_reads(genome_length: int = 1200, read_length: int = 40,
               coverage: float = 15.0, seed: int = 5,
               error_rate: float = 0.0) -> ReadBatch:
    """Helper: simulate an in-memory read batch."""
    genome = simulate_genome(genome_length, seed=seed)
    return ReadSimulator(genome=genome, read_length=read_length,
                         coverage=coverage, seed=seed + 1,
                         error_rate=error_rate).all_reads()

"""The service failure ladder: retries, deadlines, cancel, failover, drain.

Every scenario here is deterministic on the simulated clock: the chaos
sweep injects crashes and ENOSPC *inside job bodies* at seeded operation
indices, and the same seed must reproduce the same statuses, errors and
counters run after run — with retried jobs converging to byte-identical
contigs via the checkpoint ledger.
"""

from __future__ import annotations

import random

import pytest

from repro.config import AssemblyConfig, MemoryConfig, ServiceConfig
from repro.faults import ENOSPC, WRITE, Fault, FaultPlan, inject, scan_residue
from repro.faults.retry import RetryPolicy
from repro.seq.simulate import ReadSimulator, simulate_genome
from repro.service import AssemblyService, JobSpec
from repro.trace import NullTracer, SpanTracer, service_resilience_events

#: Seeds the chaos sweep runs; each draws its own crash/ENOSPC op index.
CHAOS_SEEDS = [11, 23, 47]

MIN_OVERLAP = 20


def _write_reads(path, seed, *, genome_length=400):
    genome = simulate_genome(genome_length, seed=seed)
    ReadSimulator(genome, 36, 6.0, seed=seed).to_fastq(path)
    return path


def _job_config(host=32 << 20, device=4 << 20):
    return AssemblyConfig(min_overlap=MIN_OVERLAP,
                          memory=MemoryConfig(host, device, name="svc-chaos"))


def _degenerate(tmp_path):
    """A readable FASTQ whose assembly always fails (the poison input)."""
    path = tmp_path / "poison.fastq"
    path.write_bytes(b"@r\nACGT\n+\nIIII\n")
    return path


@pytest.fixture()
def sources(tmp_path):
    return [_write_reads(tmp_path / f"reads{i}.fastq", seed=300 + i)
            for i in range(3)]


def _service(tmp_path, name="svc", *, tracer=None, **overrides):
    defaults = dict(workdir=str(tmp_path / name),
                    host_budget_bytes=256 << 20,
                    device_budget_bytes=32 << 20)
    defaults.update(overrides)
    return AssemblyService(ServiceConfig(**defaults), tracer=tracer)


class _Trigger(NullTracer):
    """A tracer that fires a service action at a chosen instant marker.

    The scheduler's ``job-start``/``job-done`` instants are emitted at
    deterministic points of the (serial) run, so triggering off them makes
    mid-flight cancellation and drain exactly reproducible.
    """

    def __init__(self, marker, job=None, action=None):
        self._marker = marker
        self._job = job
        self.action = action
        self.fired = False

    def instant(self, name, **kwargs):
        if (not self.fired and name == self._marker
                and (self._job is None or kwargs.get("job") == self._job)):
            self.fired = True
            self.action()


def _statuses(report):
    return [(o.spec.job_id, o.status, o.error) for o in report.outcomes]


def _goldens(report):
    return {o.spec.job_id: o.contig_bytes() for o in report.outcomes}


# -- the tentpole: seeded chaos sweep with bounded retry -----------------------


def _probe_ops(tmp_path, sources):
    """Trace of every instrumented op in the whole clean service run."""
    plan = FaultPlan()
    service = _service(tmp_path, "probe")
    config = _job_config()
    specs = [JobSpec(f"job{i}", f"t{i % 2}", src, config)
             for i, src in enumerate(sources)]
    with inject(plan):
        report = service.run_jobs(specs)
    assert report.n_done == len(specs)
    return plan.trace, _goldens(report)


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("kind", ["crash", "enospc"])
def test_chaos_sweep_retries_to_byte_identical_results(
        tmp_path, sources, seed, kind):
    """A fault inside a job body is retried and converges byte-for-byte."""
    trace, goldens = _probe_ops(tmp_path, sources)
    assert len(trace) > 25
    # An ENOSPC only fires on write hooks; a crash can land on any op.
    candidates = [t.op for t in trace if kind == "crash" or t.site == WRITE]
    op = random.Random(seed).choice(candidates)
    config = _job_config()
    specs = [JobSpec(f"job{i}", f"t{i % 2}", src, config)
             for i, src in enumerate(sources)]

    def faulted_run(name):
        plan = FaultPlan.crash_at(op) if kind == "crash" else FaultPlan(
            [Fault(ENOSPC, site=WRITE, at_op=op)], seed=op)
        service = _service(tmp_path, name, job_max_attempts=3)
        with inject(plan):
            report = service.run_jobs(specs)
        assert plan.events, f"op {op} never fired"
        return report

    report = faulted_run(f"chaos-{kind}-{seed}-a")
    # The fault is once-armed: exactly one attempt dies, its retry resumes
    # from the checkpoint ledger and every job converges to the golden.
    assert report.n_done == len(specs)
    assert report.counters["job_retries"] == 1
    assert report.counters["job_attempts_failed"] == 1
    assert report.counters["retry_backoff_sim_s"] > 0
    assert _goldens(report) == goldens
    retried = [o for o in report.outcomes if o.attempts == 2]
    assert len(retried) == 1 and retried[0].error_chain
    # Same seed, fresh service: byte-identical statuses, errors, counters.
    again = faulted_run(f"chaos-{kind}-{seed}-b")
    assert _statuses(again) == _statuses(report)
    assert again.counters == report.counters
    assert _goldens(again) == goldens


def test_retry_backoff_follows_the_seeded_policy(tmp_path):
    """The metered backoff equals the shared RetryPolicy schedule exactly."""
    poison = _degenerate(tmp_path)
    config = _job_config()
    service = _service(tmp_path, job_max_attempts=4, job_retry_backoff_s=0.2)
    report = service.run_jobs([JobSpec("p", "t", poison, config)])
    policy = RetryPolicy(max_attempts=4, base_backoff_s=0.2, seed=config.seed)
    expected = sum(policy.backoff_s(attempt, key="p")
                   for attempt in (1, 2, 3))
    assert report.counters["job_retries"] == 3
    assert report.counters["retry_backoff_sim_s"] == pytest.approx(expected)


# -- quarantine ----------------------------------------------------------------


def test_poison_job_quarantines_after_exact_attempts(tmp_path, sources):
    poison = _degenerate(tmp_path)
    config = _job_config()
    service = _service(tmp_path, job_max_attempts=3)
    report = service.run_jobs([JobSpec("p", "t", poison, config),
                               JobSpec("ok", "t", sources[0], config)])
    outcomes = {o.spec.job_id: o for o in report.outcomes}
    assert outcomes["p"].status == "quarantined"
    assert outcomes["p"].attempts == 3
    assert len(outcomes["p"].error_chain) == 3
    assert outcomes["p"].error == outcomes["p"].error_chain[-1]
    assert outcomes["ok"].ok  # unrelated work completes
    assert report.counters["job_retries"] == 2
    assert report.counters["jobs_quarantined"] == 1
    assert report.n_quarantined == 1 and report.n_failed == 1
    (entry,) = report.quarantine
    assert entry.job_id == "p" and entry.attempts == 3
    assert len(entry.error_chain) == 3


def test_quarantined_content_never_repoisons_the_queue(tmp_path):
    poison = _degenerate(tmp_path)
    config = _job_config()
    service = _service(tmp_path, job_max_attempts=2)
    first = service.run_jobs([JobSpec("p", "t", poison, config)])
    assert first.n_quarantined == 1
    runs_before = service.meter.counters()["pipeline_runs"]
    # Same content, new job id, later run of the same service: fails fast.
    second = service.run_jobs([JobSpec("p2", "t", poison, config)])
    (outcome,) = second.outcomes
    assert outcome.status == "failed" and not outcome.executed
    assert "quarantined" in outcome.error and "p" in outcome.error
    assert service.meter.counters()["pipeline_runs"] == runs_before
    assert service.meter.counters()["quarantine_hits"] == 1
    assert second.quarantine == ()  # nothing new was quarantined


# -- deadlines and cancellation ------------------------------------------------


def test_deadline_times_out_at_a_phase_boundary(tmp_path, sources):
    config = _job_config()
    service = _service(tmp_path)
    report = service.run_jobs(
        [JobSpec("slow", "t", sources[0], config, deadline_s=1e-12),
         JobSpec("fine", "t", sources[1], config, deadline_s=1e6)])
    outcomes = {o.spec.job_id: o for o in report.outcomes}
    assert outcomes["slow"].status == "timed_out"
    assert "phase boundary" in outcomes["slow"].error
    assert outcomes["fine"].ok
    assert report.counters["jobs_timed_out"] == 1
    # Timeouts are not failures and are never retried.
    assert report.n_timed_out == 1 and report.n_failed == 0
    assert "job_retries" not in report.counters
    # Deterministic: the same seed stops at the same boundary.
    again = _service(tmp_path, "svc2").run_jobs(
        [JobSpec("slow", "t", sources[0], config, deadline_s=1e-12)])
    assert again.outcomes[0].error == outcomes["slow"].error


def test_cancel_drops_queued_job_before_execution(tmp_path, sources):
    config = _job_config()
    service = _service(tmp_path)
    service.cancel("victim")
    report = service.run_jobs([JobSpec("victim", "t", sources[0], config),
                               JobSpec("other", "t", sources[1], config)])
    outcomes = {o.spec.job_id: o for o in report.outcomes}
    assert outcomes["victim"].status == "cancelled"
    assert not outcomes["victim"].executed
    assert outcomes["other"].ok
    assert report.counters["jobs_cancelled"] == 1
    assert report.n_cancelled == 1 and report.n_failed == 0
    assert "pipeline_runs" not in report.counters or \
        report.counters["pipeline_runs"] == 1


def test_cancel_mid_flight_stops_at_next_boundary(tmp_path, sources):
    config = _job_config()
    trigger = _Trigger("job-start", job="victim")
    service = _service(tmp_path, tracer=trigger)
    trigger.action = lambda: service.cancel("victim")
    report = service.run_jobs([JobSpec("victim", "t", sources[0], config),
                               JobSpec("other", "t", sources[1], config)])
    outcomes = {o.spec.job_id: o for o in report.outcomes}
    assert trigger.fired
    assert outcomes["victim"].status == "cancelled"
    assert outcomes["victim"].executed  # it was running when cancelled
    assert "phase boundary" in outcomes["victim"].error
    assert outcomes["other"].ok


# -- single-flight leader failover ---------------------------------------------


def test_cancelled_leader_promotes_oldest_follower(tmp_path, sources):
    config = _job_config()
    trigger = _Trigger("job-start", job="a")
    service = _service(tmp_path, tracer=trigger)
    trigger.action = lambda: service.cancel("a")
    report = service.run_jobs([JobSpec("a", "t", sources[0], config),
                               JobSpec("b", "t", sources[0], config),
                               JobSpec("c", "t", sources[0], config)])
    outcomes = {o.spec.job_id: o for o in report.outcomes}
    assert outcomes["a"].status == "cancelled"
    assert outcomes["b"].ok and outcomes["b"].promoted_from == "a"
    assert outcomes["b"].executed and outcomes["b"].joined is None
    # The remaining follower joins the *promoted* leader's result.
    assert outcomes["c"].ok and outcomes["c"].joined == "b"
    assert report.counters["leader_promoted"] == 1


def test_timed_out_leader_promotes_follower_with_roomier_deadline(
        tmp_path, sources):
    config = _job_config()
    service = _service(tmp_path)
    report = service.run_jobs(
        [JobSpec("a", "t", sources[0], config, deadline_s=1e-12),
         JobSpec("b", "t", sources[0], config)])
    outcomes = {o.spec.job_id: o for o in report.outcomes}
    assert outcomes["a"].status == "timed_out"
    assert outcomes["b"].ok and outcomes["b"].promoted_from == "a"


def test_followers_of_unpromotable_leader_carry_their_own_error(
        tmp_path, sources):
    """Admission-rejected leaders do not promote; followers get named errors."""
    service = _service(tmp_path, host_budget_bytes=16 << 20,
                       device_budget_bytes=2 << 20)
    hungry = _job_config(64 << 20, 8 << 20)
    report = service.run_jobs([JobSpec("a", "t", sources[0], hungry),
                               JobSpec("b", "t", sources[0], hungry)])
    outcomes = {o.spec.job_id: o for o in report.outcomes}
    assert outcomes["a"].status == "failed"
    assert outcomes["b"].status == "failed" and outcomes["b"].joined == "a"
    assert "leader a" in outcomes["b"].error
    assert outcomes["b"].error != outcomes["a"].error
    assert "leader_promoted" not in report.counters


# -- drain and load shedding ---------------------------------------------------


def test_drain_finishes_inflight_and_sheds_queued(tmp_path, sources):
    config = _job_config()
    trigger = _Trigger("job-done")
    service = _service(tmp_path, batch_max_bytes=0, tracer=trigger)
    trigger.action = service.drain
    specs = [JobSpec(f"job{i}", "t", src, config)
             for i, src in enumerate(sources)]
    report = service.run_jobs(specs)
    assert report.drained
    outcomes = {o.spec.job_id: o for o in report.outcomes}
    assert outcomes["job0"].ok  # in-flight when drain hit: ran to completion
    for job_id in ("job1", "job2"):
        assert outcomes[job_id].status == "shed"
        assert not outcomes[job_id].executed
        assert "drain" in outcomes[job_id].error
    assert report.counters["drain_shed"] == 2
    assert report.n_shed == 2 and report.n_failed == 0
    # Zero residue: only the executed job left a workdir, and it is clean.
    jobs_root = service.config.workdir + "/jobs"
    from pathlib import Path
    dirs = sorted(p.name for p in Path(jobs_root).iterdir())
    assert dirs == ["job0"]
    assert scan_residue(Path(jobs_root)) == []


def test_drain_before_run_sheds_everything(tmp_path, sources):
    config = _job_config()
    service = _service(tmp_path)
    service.drain()
    report = service.run_jobs([JobSpec("a", "t", sources[0], config)])
    assert report.drained
    assert report.outcomes[0].status == "shed"
    assert "pipeline_runs" not in report.counters


def test_max_queued_sheds_lowest_weight_newest_first(tmp_path, sources):
    sources.append(_write_reads(tmp_path / "reads3.fastq", seed=303))
    config = _job_config()
    service = _service(tmp_path, max_queued=2,
                       tenant_weights={"vip": 4.0})
    specs = [JobSpec("v0", "vip", sources[0], config),
             JobSpec("v1", "vip", sources[1], config),
             JobSpec("l0", "low", sources[2], config),
             JobSpec("l1", "low", sources[3], config)]
    report = service.run_jobs(specs)
    outcomes = {o.spec.job_id: o for o in report.outcomes}
    assert outcomes["v0"].ok and outcomes["v1"].ok
    for job_id in ("l0", "l1"):
        assert outcomes[job_id].status == "shed"
        assert "admission_shed" in outcomes[job_id].error
    assert report.counters["admission_shed"] == 2
    assert report.tenants["low"].shed == 2


def test_parallel_mode_retries_and_quarantines(tmp_path, sources):
    """The ladder holds when batches run on worker threads.

    Settlement (retry re-queueing, quarantine, promotion) happens on the
    loop thread after each worker batch, and the scheduler parks on its
    release event until retried work re-enters the queue — this exercises
    that wake-up path, which serial mode never takes.
    """
    poison = _degenerate(tmp_path)
    config = _job_config()
    service = _service(tmp_path, max_parallel=3, job_max_attempts=2,
                       batch_max_bytes=0)
    specs = [JobSpec("p", "t", poison, config)] + [
        JobSpec(f"job{i}", "t", src, config)
        for i, src in enumerate(sources)]
    report = service.run_jobs(specs)
    outcomes = {o.spec.job_id: o for o in report.outcomes}
    assert outcomes["p"].status == "quarantined"
    assert outcomes["p"].attempts == 2
    assert all(outcomes[f"job{i}"].ok for i in range(len(sources)))
    assert report.counters["job_retries"] == 1
    assert report.counters["jobs_quarantined"] == 1


# -- instrumentation and accounting --------------------------------------------


def test_service_resilience_events_rolls_up_the_ladder(tmp_path, sources):
    poison = _degenerate(tmp_path)
    config = _job_config()
    tracer = SpanTracer()
    service = _service(tmp_path, job_max_attempts=2, max_queued=2,
                       tracer=tracer)
    service.cancel("gone")
    report = service.run_jobs([JobSpec("p", "t", poison, config),
                               JobSpec("gone", "t", sources[0], config),
                               JobSpec("ok", "t", sources[1], config)])
    counts = service_resilience_events(tracer.events)
    assert counts["job_retries"] == 1
    assert counts["quarantined"] == 1
    assert counts["cancelled"] == 1
    assert counts["retry_backoff_sim_s"] == pytest.approx(
        report.counters["retry_backoff_sim_s"])
    assert counts["admission_shed"] == 0 and counts["drain_shed"] == 0
    assert counts["leaders_promoted"] == 0


def test_clean_run_emits_no_ladder_events(tmp_path, sources):
    tracer = SpanTracer()
    service = _service(tmp_path, tracer=tracer)
    config = _job_config()
    report = service.run_jobs([JobSpec("a", "t", sources[0], config)])
    assert report.n_done == 1
    counts = service_resilience_events(tracer.events)
    assert all(value == 0 for value in counts.values())


def test_report_summary_and_accounting_split_outcome_classes(tmp_path, sources):
    poison = _degenerate(tmp_path)
    config = _job_config()
    service = _service(tmp_path, job_max_attempts=2)
    service.cancel("gone")
    report = service.run_jobs(
        [JobSpec("p", "t", poison, config),
         JobSpec("gone", "t", sources[0], config),
         JobSpec("late", "t", sources[1], config, deadline_s=1e-12),
         JobSpec("ok", "t", sources[2], config)])
    assert (report.n_done, report.n_failed, report.n_quarantined,
            report.n_cancelled, report.n_timed_out, report.n_shed) \
        == (1, 1, 1, 1, 1, 0)
    tenant = report.tenants["t"]
    assert (tenant.jobs, tenant.quarantined, tenant.cancelled,
            tenant.timed_out, tenant.shed) == (4, 1, 1, 1, 0)
    text = report.summary()
    assert "1 cancelled" in text and "1 timed out" in text
    assert "quarantined p" in text
    assert "retries" in text

"""Packed read store: 2-bit codec and on-disk format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DatasetError, StreamProtocolError
from repro.seq.packing import PackedReadStore, pack_codes, unpack_codes
from repro.seq.records import ReadBatch


class TestCodec:
    def test_pack_width(self):
        packed = pack_codes(np.zeros((3, 10), dtype=np.uint8))
        assert packed.shape == (3, 3)  # ceil(10/4)

    def test_roundtrip_known(self):
        codes = np.array([[0, 1, 2, 3, 0, 1]], dtype=np.uint8)
        assert np.array_equal(unpack_codes(pack_codes(codes), 6), codes)

    @given(st.integers(1, 40), st.integers(1, 30), st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_roundtrip_property(self, length, n, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 4, (n, length), dtype=np.uint8)
        assert np.array_equal(unpack_codes(pack_codes(codes), length), codes)

    def test_packing_is_dense(self):
        """4 bases per byte — the 13x FASTQ shrink the paper relies on."""
        codes = np.zeros((1, 100), dtype=np.uint8)
        assert pack_codes(codes).nbytes == 25


class TestStore:
    def test_write_read_roundtrip(self, tmp_path, rng):
        codes = rng.integers(0, 4, (100, 33), dtype=np.uint8)
        path = tmp_path / "reads.lsgr"
        with PackedReadStore.create(path, 33) as store:
            store.append_batch(ReadBatch(codes[:60]))
            store.append_batch(ReadBatch(codes[60:]))
        with PackedReadStore.open(path) as store:
            assert store.n_reads == 100
            assert store.read_length == 33
            out = store.read_slice(0, 100)
            assert np.array_equal(out.codes, codes)

    def test_read_slice_ids(self, tmp_path, rng):
        codes = rng.integers(0, 4, (10, 8), dtype=np.uint8)
        path = tmp_path / "r.lsgr"
        with PackedReadStore.create(path, 8) as store:
            store.append_batch(ReadBatch(codes))
        with PackedReadStore.open(path) as store:
            chunk = store.read_slice(4, 7)
            assert chunk.start_id == 4
            assert np.array_equal(chunk.codes, codes[4:7])

    def test_iter_batches(self, tmp_path, rng):
        codes = rng.integers(0, 4, (25, 5), dtype=np.uint8)
        path = tmp_path / "r.lsgr"
        with PackedReadStore.create(path, 5) as store:
            store.append_batch(ReadBatch(codes))
        with PackedReadStore.open(path) as store:
            sizes = [b.n_reads for b in store.iter_batches(10)]
            assert sizes == [10, 10, 5]

    def test_mode_enforcement(self, tmp_path):
        path = tmp_path / "r.lsgr"
        writer = PackedReadStore.create(path, 4)
        with pytest.raises(StreamProtocolError):
            writer.read_slice(0, 0)
        writer.close()
        reader = PackedReadStore.open(path)
        with pytest.raises(StreamProtocolError):
            reader.append_batch(ReadBatch.from_strings(["ACGT"]))
        reader.close()

    def test_length_mismatch_rejected(self, tmp_path):
        with PackedReadStore.create(tmp_path / "r.lsgr", 4) as store:
            with pytest.raises(DatasetError):
                store.append_batch(ReadBatch.from_strings(["ACGTA"]))

    def test_slice_bounds_checked(self, tmp_path):
        path = tmp_path / "r.lsgr"
        with PackedReadStore.create(path, 4) as store:
            store.append_batch(ReadBatch.from_strings(["ACGT"]))
        with PackedReadStore.open(path) as store:
            with pytest.raises(DatasetError):
                store.read_slice(0, 2)

    def test_open_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"not a store, definitely")
        with pytest.raises(DatasetError, match="not a packed read store"):
            PackedReadStore.open(path)

    def test_open_rejects_truncated(self, tmp_path):
        path = tmp_path / "short"
        path.write_bytes(b"xy")
        with pytest.raises(DatasetError, match="truncated"):
            PackedReadStore.open(path)

    def test_meter_counts_bytes(self, tmp_path, rng):
        class Meter:
            reads = writes = 0

            def add_read(self, n):
                Meter.reads += n

            def add_write(self, n):
                Meter.writes += n

        codes = rng.integers(0, 4, (8, 8), dtype=np.uint8)
        path = tmp_path / "r.lsgr"
        with PackedReadStore.create(path, 8, Meter()) as store:
            store.append_batch(ReadBatch(codes))
        assert Meter.writes == 8 * 2  # 8 reads x 2 packed bytes
        with PackedReadStore.open(path, Meter()) as store:
            store.read_slice(0, 8)
        assert Meter.reads == 16

"""FASTA/FASTQ streaming I/O."""

import io

import pytest

from repro.errors import DatasetError
from repro.seq.fastq import (fastq_read_batches, read_fasta, read_fastq,
                             write_fasta, write_fastq)


class TestFastq:
    def test_roundtrip(self, tmp_path):
        records = [("r1", "ACGT", "IIII"), ("r2", "TTAA", "JJJJ")]
        path = tmp_path / "x.fastq"
        assert write_fastq(path, records) == 2
        assert list(read_fastq(path)) == records

    def test_stream_handles(self):
        buffer = io.StringIO()
        write_fastq(buffer, [("a", "AC", "II")])
        buffer.seek(0)
        assert list(read_fastq(buffer)) == [("a", "AC", "II")]

    def test_blank_lines_skipped(self):
        text = "@r1\nACGT\n+\nIIII\n\n@r2\nTT\n+\nII\n"
        assert len(list(read_fastq(io.StringIO(text)))) == 2

    @pytest.mark.parametrize("text,message", [
        ("ACGT\nACGT\n+\nIIII\n", "expected '@'"),
        ("@r1\nACGT\nIIII\nIIII\n", "missing '\\+'"),
        ("@r1\nACGT\n+\nII\n", "quality length"),
    ])
    def test_malformed(self, text, message):
        with pytest.raises(DatasetError, match=message):
            list(read_fastq(io.StringIO(text)))


class TestFasta:
    def test_roundtrip_with_wrapping(self, tmp_path):
        path = tmp_path / "x.fasta"
        seq = "ACGT" * 50
        write_fasta(path, [("contig.0", seq)], line_width=13)
        assert list(read_fasta(path)) == [("contig.0", seq)]

    def test_multiple_records(self):
        buffer = io.StringIO(">a\nAC\nGT\n>b\nTT\n")
        assert list(read_fasta(buffer)) == [("a", "ACGT"), ("b", "TT")]

    def test_sequence_before_header_rejected(self):
        with pytest.raises(DatasetError):
            list(read_fasta(io.StringIO("ACGT\n>a\nAC\n")))

    def test_empty_file(self):
        assert list(read_fasta(io.StringIO(""))) == []


class TestBatches:
    def _write(self, tmp_path, seqs):
        path = tmp_path / "r.fastq"
        write_fastq(path, [(f"r{i}", s, "I" * len(s)) for i, s in enumerate(seqs)])
        return path

    def test_batching_and_ids(self, tmp_path):
        path = self._write(tmp_path, ["ACGT"] * 7)
        batches = list(fastq_read_batches(path, batch_reads=3))
        assert [b.n_reads for b in batches] == [3, 3, 1]
        assert [b.start_id for b in batches] == [0, 3, 6]

    def test_variable_length_rejected(self, tmp_path):
        path = self._write(tmp_path, ["ACGT", "ACGTA"])
        with pytest.raises(DatasetError, match="variable read length"):
            list(fastq_read_batches(path, batch_reads=10))

    def test_bad_batch_size(self, tmp_path):
        path = self._write(tmp_path, ["ACGT"])
        with pytest.raises(DatasetError):
            list(fastq_read_batches(path, batch_reads=0))

"""Failure injection: corrupted state and contract violations surface loudly.

A streaming pipeline that silently mis-reads a truncated run file produces
a *wrong genome*, not a crash — so every failure mode here must raise a
typed error instead of degrading.
"""

import numpy as np
import pytest

from repro import Assembler, AssemblyConfig
from repro.device import MemoryPool, VirtualGPU
from repro.errors import (DeviceMemoryError, HostMemoryError, ReproError,
                          SortContractError, StreamProtocolError)
from repro.extmem import ExternalSorter, RunReader, RunWriter
from repro.extmem.records import kv_dtype, make_records


class TestCorruptRunFiles:
    def test_truncated_run_detected(self, tmp_path, rng):
        records = make_records(rng.integers(0, 9, 100, dtype=np.uint64),
                               np.arange(100, dtype=np.uint32))
        path = tmp_path / "run"
        with RunWriter(path, records.dtype) as writer:
            writer.append(records)
        # chop mid-record
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(StreamProtocolError, match="multiple"):
            RunReader(path, records.dtype)

    def test_unsorted_run_rejected_by_merge(self, tmp_path, rng):
        gpu = VirtualGPU("K40", capacity_bytes=1 << 20)
        unsorted = make_records(np.array([9, 1], dtype=np.uint64),
                                np.array([0, 1], dtype=np.uint32))
        a = gpu.to_device(unsorted)
        b = gpu.to_device(unsorted[:1])
        with pytest.raises(SortContractError):
            gpu.merge_records_device(a, b)

    def test_unsorted_haystack_rejected_by_bounds(self):
        gpu = VirtualGPU("K40", capacity_bytes=1 << 20)
        bad = make_records(np.array([5, 3], dtype=np.uint64),
                           np.array([0, 1], dtype=np.uint32))
        queries = make_records(np.array([4], dtype=np.uint64),
                               np.array([2], dtype=np.uint32))
        with pytest.raises(SortContractError):
            gpu.bounds_records(gpu.to_device(bad), gpu.to_device(queries))


class TestBudgetViolations:
    def test_sorter_with_impossible_device_budget(self, tmp_path, rng):
        """A device too small for even one merge window must fail loudly,
        not loop forever."""
        dtype = kv_dtype(1)
        records = make_records(rng.integers(0, 9, 5000, dtype=np.uint64),
                               np.arange(5000, dtype=np.uint32))
        path = tmp_path / "in"
        with RunWriter(path, dtype) as writer:
            writer.append(records)
        # 40 bytes: a 2-record chunk (24 B) fits, but not with its radix
        # ping-pong scratch (another 24 B).
        gpu = VirtualGPU("K40", capacity_bytes=40)
        host = MemoryPool("host", 1 << 20, HostMemoryError)
        sorter = ExternalSorter(gpu=gpu, host_pool=host, accountant=None,
                                dtype=dtype, host_block_pairs=2000,
                                device_block_pairs=2)
        with pytest.raises(DeviceMemoryError):
            sorter.sort_file(path, tmp_path / "out")

    def test_pipeline_errors_are_repro_errors(self, tmp_path):
        """Any pipeline failure surfaces as the library's base class."""
        bad_input = tmp_path / "nope.fastq"
        with pytest.raises(ReproError):
            Assembler(AssemblyConfig(min_overlap=20)).assemble(bad_input)


class TestCheckpointCorruption:
    def test_corrupt_graph_archive_triggers_rerun(self, tmp_path, tiny_md):
        from repro.core.checkpoint import GRAPH_FILE

        config = AssemblyConfig(min_overlap=25)
        work = tmp_path / "w"
        first = Assembler(config).assemble(tiny_md.store_path, workdir=work,
                                           resume=True)
        # corrupt the archived graph; resume must silently rebuild it
        (work / GRAPH_FILE).write_bytes(b"\x00" * 64)
        second = Assembler(config).assemble(tiny_md.store_path, workdir=work,
                                            resume=True)
        assert second.reduce_report.edges_added == first.reduce_report.edges_added

    def test_deleted_sorted_partition_triggers_resort(self, tmp_path, tiny_md):
        config = AssemblyConfig(min_overlap=25)
        work = tmp_path / "w"
        first = Assembler(config).assemble(tiny_md.store_path, workdir=work,
                                           resume=True)
        victim = next((work / "partitions").glob("S_*.sorted.run"))
        victim.unlink()
        # sorted state incomplete -> sort (and reduce) re-run cleanly...
        # but map output was consumed; the ledger invalidation cascades and
        # the whole pipeline rebuilds from the packed store.
        second = Assembler(config).assemble(tiny_md.store_path, workdir=work,
                                            resume=True)
        assert second.reduce_report.edges_added == first.reduce_report.edges_added
"""Edge cases for the device kernels that the main kernel tests skip."""

import numpy as np
import pytest

from repro.device.kernels import (_common_dtype, merge_sorted_records,
                                  lsd_radix_sort_indices)
from repro.errors import SortContractError
from repro.extmem.records import kv_dtype


class TestCommonDtype:
    def test_equal_structured(self):
        a = np.zeros(1, dtype=kv_dtype(1))
        assert _common_dtype(a, a) == kv_dtype(1)

    def test_mismatched_structured_rejected(self):
        a = np.zeros(1, dtype=kv_dtype(1))
        b = np.zeros(1, dtype=kv_dtype(2))
        with pytest.raises(SortContractError, match="record dtypes"):
            _common_dtype(a, b)

    def test_scalar_promotion(self):
        a = np.zeros(1, dtype=np.uint32)
        b = np.zeros(1, dtype=np.uint64)
        assert _common_dtype(a, b) == np.uint64


class TestMergeEdges:
    def test_empty_both_sides(self):
        empty = np.empty(0, dtype=np.uint64)
        keys, (payload,) = merge_sorted_records(empty, (empty.copy(),),
                                                empty, (empty.copy(),))
        assert keys.shape[0] == 0 and payload.shape[0] == 0

    def test_one_empty_side(self):
        a = np.array([1, 2], dtype=np.uint64)
        empty = np.empty(0, dtype=np.uint64)
        keys, (payload,) = merge_sorted_records(a, (a.copy(),), empty,
                                                (empty.copy(),))
        assert keys.tolist() == [1, 2]

    def test_all_equal_keys(self):
        a = np.array([7, 7, 7], dtype=np.uint64)
        b = np.array([7, 7], dtype=np.uint64)
        pa = np.array([0, 1, 2], dtype=np.int64)
        pb = np.array([10, 11], dtype=np.int64)
        _, (payload,) = merge_sorted_records(a, (pa,), b, (pb,))
        assert payload.tolist() == [0, 1, 2, 10, 11]  # A before B, stable


class TestRadixEdges:
    def test_empty_and_singleton(self):
        assert lsd_radix_sort_indices(np.empty(0, dtype=np.uint64)).shape == (0,)
        assert lsd_radix_sort_indices(np.array([5], dtype=np.uint64)).tolist() \
            == [0]

    def test_extreme_values(self):
        keys = np.array([2**64 - 1, 0, 2**63, 1], dtype=np.uint64)
        order = lsd_radix_sort_indices(keys)
        assert keys[order].tolist() == [0, 1, 2**63, 2**64 - 1]

"""Genome and shotgun-read simulation."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.seq.alphabet import decode, reverse_complement
from repro.seq.simulate import ReadSimulator, simulate_genome


class TestGenome:
    def test_deterministic(self):
        assert np.array_equal(simulate_genome(500, seed=1), simulate_genome(500, seed=1))
        assert not np.array_equal(simulate_genome(500, seed=1),
                                  simulate_genome(500, seed=2))

    def test_alphabet_range(self):
        genome = simulate_genome(1000, seed=3)
        assert genome.dtype == np.uint8 and genome.max() <= 3

    def test_repeats_implanted(self):
        genome = simulate_genome(20_000, seed=4, repeat_fraction=0.3,
                                 repeat_length=300)
        template = genome[:300].tobytes()
        text = genome.tobytes()
        occurrences = 0
        start = text.find(template)
        while start != -1:
            occurrences += 1
            start = text.find(template, start + 1)
        assert occurrences >= 2  # the original plus implanted copies

    @pytest.mark.parametrize("kwargs", [
        {"length": 0},
        {"length": 100, "repeat_fraction": 1.0},
    ])
    def test_validation(self, kwargs):
        length = kwargs.pop("length")
        with pytest.raises(DatasetError):
            simulate_genome(length, **kwargs)


class TestReadSimulator:
    def _sim(self, **kwargs):
        genome = simulate_genome(2000, seed=8)
        defaults = dict(genome=genome, read_length=50, coverage=10.0, seed=9)
        defaults.update(kwargs)
        return ReadSimulator(**defaults)

    def test_read_count_matches_coverage(self):
        sim = self._sim(coverage=10.0)
        assert sim.n_reads == round(10.0 * 2000 / 50)

    def test_deterministic_across_batchings(self):
        sim = self._sim()
        whole = sim.all_reads()
        chunks = list(sim.batches(batch_reads=37))
        rebuilt = np.concatenate([b.codes for b in chunks])
        assert np.array_equal(whole.codes, rebuilt)
        assert [b.start_id for b in chunks][:3] == [0, 37, 74]

    def test_error_free_reads_are_genome_substrings(self):
        sim = self._sim(rc_fraction=0.0, error_rate=0.0)
        genome_text = decode(sim.genome)
        for row in sim.all_reads().codes[:50]:
            assert decode(row) in genome_text

    def test_rc_reads_come_from_reverse_strand(self):
        sim = self._sim(rc_fraction=1.0)
        rc_text = decode(reverse_complement(sim.genome))
        for row in sim.all_reads().codes[:50]:
            assert decode(row) in rc_text

    def test_error_rate_mutates(self):
        clean = self._sim(error_rate=0.0).all_reads().codes
        noisy = self._sim(error_rate=0.05).all_reads().codes
        mismatches = (clean != noisy).mean()
        assert 0.02 < mismatches < 0.09  # ~5% plus strand-flip noise tolerance

    def test_to_fastq(self, tmp_path):
        sim = self._sim(coverage=2.0)
        path = tmp_path / "sim.fastq"
        count = sim.to_fastq(path)
        assert count == sim.n_reads
        from repro.seq.fastq import read_fastq
        names = [name for name, _, _ in read_fastq(path)]
        assert names[0] == "sim.0" and len(names) == count

    @pytest.mark.parametrize("kwargs", [
        {"read_length": 1},
        {"read_length": 5000},
        {"coverage": 0.0},
        {"error_rate": 1.0},
        {"rc_fraction": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(DatasetError):
            self._sim(**kwargs)

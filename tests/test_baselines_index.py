"""Suffix array, BWT, and FM-index."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import FMIndex, suffix_array
from repro.baselines.suffix_array import bwt_from_sa
from repro.errors import ConfigError

texts = st.lists(st.integers(0, 4), min_size=0, max_size=300)


class TestSuffixArray:
    @given(texts)
    @settings(max_examples=60)
    def test_matches_sorted_suffixes(self, values):
        text = np.array(values, dtype=np.uint8)
        sa = suffix_array(text)
        reference = sorted(range(len(values)), key=lambda i: tuple(values[i:]))
        assert sa.tolist() == reference

    def test_empty(self):
        assert suffix_array(np.array([], dtype=np.uint8)).shape == (0,)

    def test_rejects_2d(self):
        with pytest.raises(ConfigError):
            suffix_array(np.zeros((2, 2), dtype=np.uint8))

    def test_repetitive_text(self):
        text = np.array([1, 1, 1, 1, 1], dtype=np.uint8)
        sa = suffix_array(text)
        assert sa.tolist() == [4, 3, 2, 1, 0]

    @given(texts.filter(lambda v: len(v) > 0))
    @settings(max_examples=30)
    def test_bwt_is_permutation(self, values):
        text = np.array(values, dtype=np.uint8)
        bwt = bwt_from_sa(text, suffix_array(text))
        assert sorted(bwt.tolist()) == sorted(values)


class TestFMIndex:
    @pytest.fixture()
    def index_and_reads(self, rng):
        oriented = rng.integers(0, 4, (20, 15), dtype=np.uint8)
        return FMIndex(oriented), oriented

    def test_backward_search_counts_occurrences(self, index_and_reads, rng):
        index, oriented = index_and_reads
        text = index.text
        for _ in range(20):
            row = rng.integers(0, oriented.shape[0])
            start = rng.integers(0, oriented.shape[1] - 3)
            pattern = oriented[row, start:start + 3] + 1
            lo, hi = index.whole_range(1)
            for symbol in pattern[::-1]:
                lo, hi = index.backward_extend(lo, hi, np.array([symbol]))
            expected = 0
            for position in range(text.shape[0] - 2):
                if np.array_equal(text[position:position + 3], pattern):
                    expected += 1
            assert hi[0] - lo[0] == expected

    def test_string_starts(self, index_and_reads):
        index, oriented = index_and_reads
        # search for read 7's full prefix of length 6
        pattern = oriented[7, :6] + 1
        lo, hi = index.whole_range(1)
        for symbol in pattern[::-1]:
            lo, hi = index.backward_extend(lo, hi, np.array([symbol]))
        ids = index.string_ids_in_interval(int(lo[0]), int(hi[0]))
        assert 7 in ids.tolist()
        # every id returned really starts with the pattern
        for string_id in ids:
            assert np.array_equal(oriented[string_id, :6] + 1, pattern)

    def test_count_matches_enumeration(self, index_and_reads):
        index, oriented = index_and_reads
        lo, hi = index.whole_range(oriented.shape[0])
        symbols = oriented[:, -1].astype(np.int64) + 1
        lo, hi = index.backward_extend(lo, hi, symbols)
        counts = index.count_string_starts(lo, hi)
        for row in range(oriented.shape[0]):
            expected = int((oriented[:, 0] == oriented[row, -1]).sum())
            assert counts[row] == expected

    def test_empty_interval_stays_empty(self, index_and_reads):
        index, _ = index_and_reads
        lo = np.array([5], dtype=np.int64)
        hi = np.array([5], dtype=np.int64)
        lo2, hi2 = index.backward_extend(lo, hi, np.array([2]))
        assert lo2[0] == hi2[0]

    def test_rejects_1d(self):
        with pytest.raises(ConfigError):
            FMIndex(np.zeros(5, dtype=np.uint8))

    def test_nbytes_positive(self, index_and_reads):
        index, _ = index_and_reads
        assert index.nbytes > index.n_text

"""Distributed sensitivity: interconnect speed and load balance."""

import pytest

from repro import AssemblyConfig
from repro.distributed import DistributedAssembler, NetworkSpec
from repro.model import Workload, model_distributed_seconds
from repro.config import MemoryConfig
from repro.seq.datasets import get_dataset


class TestNetworkSensitivity:
    def test_slower_network_inflates_shuffle_only(self, tmp_path):
        from repro.seq.datasets import tiny_dataset

        md, _ = tiny_dataset(tmp_path, genome_length=1500, read_length=50,
                             coverage=15.0, min_overlap=25, seed=91)
        config = AssemblyConfig(min_overlap=25)
        fast = DistributedAssembler(config, 4).assemble(md.store_path)
        slow = DistributedAssembler(
            config, 4, network=NetworkSpec.ethernet_10g()).assemble(md.store_path)
        assert slow.phase_seconds["shuffle"] > fast.phase_seconds["shuffle"]
        # compute-bound phases unchanged
        assert slow.phase_seconds["map"] == pytest.approx(
            fast.phase_seconds["map"], rel=0.02)
        assert slow.phase_seconds["sort"] == pytest.approx(
            fast.phase_seconds["sort"], rel=0.02)
        assert slow.edges == fast.edges

    def test_model_shuffle_grows_on_ethernet(self):
        workload = Workload.from_spec(get_dataset("hgenome_sim"))
        memory = MemoryConfig.preset("supermic")
        infiniband = model_distributed_seconds(workload, memory, "K20X", 8)
        ethernet = model_distributed_seconds(
            workload, memory, "K20X", 8,
            network=NetworkSpec.ethernet_10g())
        assert ethernet["shuffle"] > infiniband["shuffle"]
        assert ethernet["total"] > infiniband["total"]
        # the paper's IB keeps shuffle subdominant to sort
        assert infiniband["shuffle"] < infiniband["sort"]

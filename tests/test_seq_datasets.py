"""Dataset registry and materialization."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.seq.datasets import (DEFAULT_SCALE, active_scale, dataset_registry,
                                get_dataset, materialize_dataset, tiny_dataset)
from repro.model.paper_values import TABLE1


class TestRegistry:
    def test_four_table1_analogs(self):
        registry = dataset_registry()
        assert set(registry) == {"hchr14_sim", "bumblebee_sim", "parakeet_sim",
                                 "hgenome_sim"}

    def test_paper_numbers_match_table1(self):
        for spec in dataset_registry().values():
            row = TABLE1[spec.paper_name]
            assert spec.read_length == row["length"]
            assert spec.paper.reads == row["reads"]
            assert spec.paper.bases == row["bases"]
            assert spec.min_overlap == row["min_overlap"]

    def test_coverage_realistic(self):
        for spec in dataset_registry().values():
            assert 30 < spec.coverage < 150

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            get_dataset("ecoli")

    def test_scaled_reads_scale_linearly(self):
        spec = get_dataset("hgenome_sim")
        small = spec.scaled_reads(1e-5)
        large = spec.scaled_reads(4e-5)
        assert 3.5 < large / small < 4.5


class TestActiveScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert active_scale() == DEFAULT_SCALE

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1e-4")
        assert active_scale() == 1e-4

    @pytest.mark.parametrize("bad", ["zero", "-1"])
    def test_env_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_SCALE", bad)
        with pytest.raises(DatasetError):
            active_scale()


class TestMaterialize:
    def test_produces_artifacts(self, tmp_path):
        md = materialize_dataset("hchr14_sim", tmp_path, scale=2e-6)
        assert md.store_path.exists() and md.genome_path.exists()
        with md.open_store() as store:
            assert store.n_reads == md.n_reads
            assert store.read_length == 101
        genome = md.genome()
        assert genome.dtype == np.uint8

    def test_cached_reuse(self, tmp_path):
        first = materialize_dataset("hchr14_sim", tmp_path, scale=2e-6)
        mtime = first.store_path.stat().st_mtime_ns
        second = materialize_dataset("hchr14_sim", tmp_path, scale=2e-6)
        assert second.store_path == first.store_path
        assert second.store_path.stat().st_mtime_ns == mtime
        assert second.n_reads == first.n_reads

    def test_different_scale_different_dir(self, tmp_path):
        a = materialize_dataset("hchr14_sim", tmp_path, scale=2e-5)
        b = materialize_dataset("hchr14_sim", tmp_path, scale=4e-5)
        assert a.root != b.root
        assert b.n_reads > a.n_reads


class TestTinyDataset:
    def test_roundtrip_with_batch(self, tmp_path):
        md, batch = tiny_dataset(tmp_path, genome_length=600, read_length=30,
                                 coverage=5.0)
        assert md.n_reads == batch.n_reads
        with md.open_store() as store:
            assert np.array_equal(store.read_slice(0, batch.n_reads).codes,
                                  batch.codes)

"""Differential oracle: the pipeline vs the exact O(n·L²) baseline.

Every pipeline configuration — merge fanout, block sizes, node count — must
produce *exactly* the greedy string graph the brute-force oracle builds from
exact suffix–prefix overlaps fed in pipeline stream order. A single missing
or extra edge on any configuration is a correctness bug (a fingerprint
collision mishandled, a partition lost in a merge round, a token dropped),
not a tolerance issue — so the comparison is array equality, never "close".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.naive_overlap import (exact_overlaps,
                                           greedy_graph_pipeline_order)
from repro.config import AssemblyConfig
from repro.core.pipeline import Assembler
from repro.distributed.cluster import DistributedAssembler
from repro.fingerprint import FingerprintScheme
from repro.seq.datasets import tiny_dataset

GENOME_SEEDS = (7, 13, 29)
#: 2 and 4 explicit, 0 = derive the widest fanout the device window allows.
FANOUTS = (2, 4, 0)
MIN_OVERLAP = 26


def _config(fanout: int) -> AssemblyConfig:
    return AssemblyConfig(min_overlap=MIN_OVERLAP, merge_fanout=fanout)


@pytest.fixture(scope="module")
def genomes(tmp_path_factory):
    """Three simulated genomes with their oracle reference graphs."""
    scheme = FingerprintScheme(lanes=1, seed=_config(2).seed & 0xFFFF)
    out = {}
    for seed in GENOME_SEEDS:
        root = tmp_path_factory.mktemp(f"oracle-{seed}")
        md, batch = tiny_dataset(root, genome_length=700, read_length=40,
                                 coverage=9.0, min_overlap=MIN_OVERLAP,
                                 seed=seed)
        reference = greedy_graph_pipeline_order(batch, MIN_OVERLAP, scheme)
        out[seed] = (md, batch, reference)
    return out


@pytest.mark.parametrize("genome_seed", GENOME_SEEDS)
@pytest.mark.parametrize("fanout", FANOUTS)
def test_pipeline_graph_matches_oracle(genomes, tmp_path, genome_seed, fanout):
    md, _, reference = genomes[genome_seed]
    workdir = tmp_path / "work"
    result = Assembler(_config(fanout)).assemble(md.store_path,
                                                 workdir=workdir, resume=True)
    archive = np.load(workdir / "graph.npz")
    assert np.array_equal(archive["target"], reference.target)
    assert np.array_equal(archive["overlap"], reference.overlap)
    assert result.reduce_report.edges_added == reference.n_edges


@pytest.mark.parametrize("genome_seed", GENOME_SEEDS)
def test_contigs_invariant_across_fanouts(genomes, tmp_path, genome_seed):
    md, _, _ = genomes[genome_seed]
    contigs = []
    for fanout in FANOUTS:
        result = Assembler(_config(fanout)).assemble(
            md.store_path, workdir=tmp_path / f"f{fanout}", resume=True)
        contigs.append(result.contigs)
    base = contigs[0]
    for other in contigs[1:]:
        assert np.array_equal(other.flat_codes, base.flat_codes)
        assert np.array_equal(other.offsets, base.offsets)


def test_pipeline_graph_matches_oracle_under_cramped_blocks(genomes, tmp_path):
    """Tiny m_h/m_d force real multi-run external sorts and window merges."""
    md, _, reference = genomes[GENOME_SEEDS[0]]
    config = AssemblyConfig(min_overlap=MIN_OVERLAP, host_block_pairs=500,
                            device_block_pairs=128)
    workdir = tmp_path / "work"
    Assembler(config).assemble(md.store_path, workdir=workdir, resume=True)
    archive = np.load(workdir / "graph.npz")
    assert np.array_equal(archive["target"], reference.target)
    assert np.array_equal(archive["overlap"], reference.overlap)


@pytest.mark.parametrize("n_nodes", (1, 3))
def test_distributed_edges_match_oracle(genomes, n_nodes):
    md, _, reference = genomes[GENOME_SEEDS[0]]
    result = DistributedAssembler(_config(2), n_nodes).assemble(md.store_path)
    assert result.edges == reference.n_edges


def test_distributed_contigs_invariant_across_node_counts(genomes):
    md, _, _ = genomes[GENOME_SEEDS[1]]
    runs = [DistributedAssembler(_config(2), n).assemble(md.store_path)
            for n in (1, 2, 3)]
    base = runs[0]
    for other in runs[1:]:
        assert other.edges == base.edges
        assert np.array_equal(other.contigs.flat_codes, base.contigs.flat_codes)


def test_pipeline_finds_no_false_edges(genomes):
    """Every oracle-ordered candidate is an exact overlap by construction;
    the pipeline graph matching it means zero fingerprint false positives
    survived the aux-lane/byte-level verification."""
    _, batch, reference = genomes[GENOME_SEEDS[2]]
    truth = {(s, p) for s, p, _ in exact_overlaps(batch, MIN_OVERLAP)}
    targets = reference.target
    edges = [(v, int(targets[v])) for v in range(targets.shape[0])
             if targets[v] >= 0]
    assert edges and all(edge in truth for edge in edges)

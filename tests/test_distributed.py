"""Distributed runtime: messages, network, and the cluster assembler."""

import numpy as np
import pytest

from repro import AssemblyConfig
from repro.analysis import contig_accuracy
from repro.device import SimClock
from repro.distributed import (ActiveMessageLayer, DistributedAssembler,
                               NetworkSpec)
from repro.errors import ConfigError, DistributedProtocolError


class TestNetworkSpec:
    def test_transfer_model(self):
        network = NetworkSpec(bandwidth=1e9, latency_seconds=1e-6)
        assert network.transfer_seconds(10**9) == pytest.approx(1.0, rel=1e-3)
        assert network.transfer_seconds(0) == pytest.approx(1e-6)

    def test_defaults_are_infiniband_class(self):
        assert NetworkSpec().bandwidth > 5e9

    def test_ethernet_slower(self):
        assert NetworkSpec.ethernet_10g().bandwidth < NetworkSpec().bandwidth

    def test_validation(self):
        with pytest.raises(ConfigError):
            NetworkSpec(bandwidth=0)


class TestActiveMessages:
    def _layer(self):
        layer = ActiveMessageLayer(NetworkSpec(bandwidth=1e6, latency_seconds=0.0))
        clocks = {0: SimClock(), 1: SimClock()}
        for node_id, clock in clocks.items():
            layer.register_node(node_id, clock)
        return layer, clocks

    def test_request_response(self):
        layer, clocks = self._layer()
        layer.register_handler(1, "echo", lambda x: (x * 2, 8))
        assert layer.request(0, 1, "echo", 21) == 42
        assert layer.messages_sent == 1
        assert clocks[0].seconds("network") > 0
        assert layer.bytes_by_pair[(0, 1)] == 64 + 8

    def test_local_request_free(self):
        layer, clocks = self._layer()
        layer.register_handler(0, "echo", lambda x: (x, 4))
        layer.request(0, 0, "echo", 1)
        assert clocks[0].seconds("network") == 0.0
        assert layer.total_bytes == 0

    def test_unknown_handler(self):
        layer, _ = self._layer()
        with pytest.raises(DistributedProtocolError, match="no handler"):
            layer.request(0, 1, "nope")

    def test_unregistered_source(self):
        layer, _ = self._layer()
        layer.register_handler(1, "echo", lambda: (None, 0))
        with pytest.raises(DistributedProtocolError, match="unregistered"):
            layer.request(9, 1, "echo")


@pytest.fixture(scope="module")
def dist_results(tmp_path_factory):
    from repro.seq.datasets import tiny_dataset

    root = tmp_path_factory.mktemp("dist")
    md, _ = tiny_dataset(root, genome_length=1800, read_length=50,
                         coverage=18.0, min_overlap=25, seed=31)
    config = AssemblyConfig(min_overlap=25)
    results = {n: DistributedAssembler(config, n).assemble(md.store_path)
               for n in (1, 2, 4)}
    return md, results


class TestCluster:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DistributedAssembler(AssemblyConfig(), 0)

    def test_edges_invariant_across_node_counts(self, dist_results):
        _, results = dist_results
        edge_counts = {n: r.edges for n, r in results.items()}
        assert len(set(edge_counts.values())) == 1

    def test_contigs_valid_everywhere(self, dist_results):
        md, results = dist_results
        for result in results.values():
            accuracy = contig_accuracy(result.contigs, md.genome())
            assert accuracy["incorrect"] == 0

    def test_shuffle_only_beyond_one_node(self, dist_results):
        _, results = dist_results
        assert results[1].phase_seconds["shuffle"] == 0.0
        assert results[1].shuffle_bytes == 0
        assert results[2].phase_seconds["shuffle"] > 0.0
        assert results[2].shuffle_bytes > 0

    def test_map_and_sort_scale(self, dist_results):
        _, results = dist_results
        for phase in ("map", "sort"):
            assert results[4].phase_seconds[phase] \
                < results[2].phase_seconds[phase] \
                < results[1].phase_seconds[phase]

    def test_reduce_scales_sublinearly(self, dist_results):
        """Overlap finding parallelizes; the token serializes the rest."""
        _, results = dist_results
        assert results[4].phase_seconds["reduce"] <= results[1].phase_seconds["reduce"]

    def test_shuffle_bytes_grow_with_nodes(self, dist_results):
        _, results = dist_results
        assert results[4].shuffle_bytes > results[2].shuffle_bytes

    def test_per_node_balance(self, dist_results):
        """Master load-balancing: no node does more than ~2x the mean map work."""
        _, results = dist_results
        per_node = results[4].per_node_seconds["map"]
        assert max(per_node) <= 2.5 * (sum(per_node) / len(per_node))

    def test_stats_and_total(self, dist_results):
        _, results = dist_results
        result = results[2]
        assert result.total_seconds == pytest.approx(
            sum(result.phase_seconds.values()))
        assert result.stats()["n_contigs"] == result.contigs.n_contigs
        assert result.notes["am_messages"] > 0

"""Cross-module property tests: the pipeline's global invariants.

These are the strongest guarantees in the suite: for *arbitrary* small
workloads and budgets, the full pipeline must produce contigs that are
exact substrings of the (error-free) reference, find exactly the true
overlap candidates, and never exceed its memory budgets.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Assembler, AssemblyConfig
from repro.analysis import contig_accuracy
from repro.baselines import exact_overlaps
from repro.seq.packing import PackedReadStore
from repro.seq.records import ReadBatch
from repro.seq.simulate import ReadSimulator, simulate_genome

workload_params = st.tuples(
    st.integers(300, 1200),     # genome length
    st.integers(30, 60),        # read length
    st.floats(6.0, 18.0),       # coverage
    st.integers(0, 2**31 - 1),  # seed
)


def _assemble_params(tmp_root, genome_length, read_length, coverage, seed,
                     **config_kwargs):
    genome = simulate_genome(genome_length, seed=seed)
    simulator = ReadSimulator(genome=genome, read_length=read_length,
                              coverage=coverage, seed=seed + 1)
    batch = simulator.all_reads()
    store_path = tmp_root / f"reads-{seed}-{genome_length}.lsgr"
    with PackedReadStore.create(store_path, read_length) as store:
        store.append_batch(batch)
    min_overlap = read_length // 2
    config = AssemblyConfig(min_overlap=min_overlap, **config_kwargs)
    result = Assembler(config).assemble(store_path)
    return genome, batch, min_overlap, result


class TestPipelineProperties:
    @given(workload_params)
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_contigs_always_reference_substrings(self, tmp_path_factory, params):
        tmp_root = tmp_path_factory.mktemp("prop")
        genome, _, _, result = _assemble_params(tmp_root, *params)
        accuracy = contig_accuracy(result.contigs, genome)
        assert accuracy["incorrect"] == 0

    @given(workload_params)
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_candidates_equal_exact_overlap_count(self, tmp_path_factory, params):
        """Recall AND precision: the fingerprint pipeline offers exactly the
        true overlap set to the greedy rule."""
        tmp_root = tmp_path_factory.mktemp("prop")
        _, batch, min_overlap, result = _assemble_params(tmp_root, *params)
        truth = exact_overlaps(batch, min_overlap)
        assert result.reduce_report.candidates == len(truth)
        assert result.reduce_report.aux_rejected == 0

    @given(workload_params, st.integers(64, 512))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_block_sizes_never_change_the_assembly(self, tmp_path_factory,
                                                   params, block):
        """The semi-streaming machinery is purely an execution strategy:
        any (m_h, m_d) choice yields the same contigs."""
        tmp_root = tmp_path_factory.mktemp("prop")
        _, _, _, baseline = _assemble_params(tmp_root, *params)
        _, _, _, constrained = _assemble_params(
            tmp_root, *params,
            host_block_pairs=4 * block, device_block_pairs=block)
        assert np.array_equal(baseline.contigs.flat_codes,
                              constrained.contigs.flat_codes)
        assert np.array_equal(baseline.contigs.offsets,
                              constrained.contigs.offsets)

    @given(workload_params)
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_total_contig_bases_bounded_by_genome_copies(self, tmp_path_factory,
                                                         params):
        """Deduped contigs cover each read once; total assembled bases can
        never exceed total read bases and, with overlaps merged, should be
        far below it at real coverage."""
        tmp_root = tmp_path_factory.mktemp("prop")
        _, batch, _, result = _assemble_params(tmp_root, *params)
        total = int(result.contig_lengths().sum())
        assert 0 < total <= batch.n_reads * batch.read_length


class TestReduceStreamingEquivalence:
    @given(st.lists(st.integers(0, 30), min_size=0, max_size=150),
           st.lists(st.integers(0, 30), min_size=0, max_size=150),
           st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_windowed_join_equals_direct_join(self, s_keys, p_keys, window):
        """The Algorithm 2 window machinery must enumerate exactly the
        key-equality join of the two sorted lists, for any window size."""
        from repro.core.context import RunContext
        from repro.core.reduce_phase import ReduceReport, reduce_partition
        from repro.distributed.fingerprint_partition import _ArrayRun
        from repro.extmem.records import make_records

        s_sorted = np.sort(np.array(s_keys, dtype=np.uint64))
        p_sorted = np.sort(np.array(p_keys, dtype=np.uint64))
        suffixes = make_records(s_sorted,
                                np.arange(s_sorted.shape[0], dtype=np.uint32) * 2)
        prefixes = make_records(
            p_sorted, np.arange(p_sorted.shape[0], dtype=np.uint32) * 2
            + np.uint32(2 * s_sorted.shape[0]))

        pairs: list[tuple[int, int]] = []

        class Collector:
            read_length = 40

            def add_candidates(self, sources, targets, length):
                pairs.extend(zip(np.asarray(sources).tolist(),
                                 np.asarray(targets).tolist()))
                return 0

        ctx = RunContext(AssemblyConfig(min_overlap=20))
        try:
            reduce_partition(ctx, Collector(), _ArrayRun(suffixes),
                             _ArrayRun(prefixes), 20, window, ReduceReport())
        finally:
            ctx.cleanup()
        expected = [(int(sv), int(pv))
                    for sk, sv in zip(s_sorted, suffixes["val"])
                    for pk, pv in zip(p_sorted, prefixes["val"]) if sk == pk]
        assert sorted(pairs) == sorted(expected)

"""Span tracer, Perfetto export, analysis, and trace/telemetry agreement."""

import json
import time

import pytest

from repro.config import AssemblyConfig, MemoryConfig
from repro.core.pipeline import Assembler
from repro.distributed.cluster import DistributedAssembler
from repro.errors import TraceError
from repro.seq.datasets import tiny_dataset
from repro.trace import (EVENTS_FILE, MANIFEST_FILE, NULL_TRACER,
                         PERFETTO_FILE, PERFETTO_SIM_FILE, SpanTracer,
                         build_perfetto, check_balanced, load_events,
                         pair_spans, reconcile, summarize, validate_perfetto)


def _config(workers: int, trace: str = "") -> AssemblyConfig:
    # Cramped budgets so the external sort forms several runs and actually
    # merges (same fixture shape as tests/test_parallel_determinism.py).
    return AssemblyConfig(min_overlap=25, workers=workers,
                          memory=MemoryConfig(64 << 20, 1 << 20),
                          host_block_pairs=500, device_block_pairs=128,
                          trace=trace)


class TestSpanTracer:
    def test_span_records_balanced_pair(self):
        tracer = SpanTracer(sim_time=lambda: 1.5)
        with tracer.span("work", track="t", det=True, n=3):
            pass
        begin, end = tracer.events
        assert begin["ph"] == "B" and end["ph"] == "E"
        assert begin["id"] == end["id"]
        assert begin["track"] == "t" and begin["det"] is True
        assert begin["args"] == {"n": 3}
        assert begin["sim"] == 1.5 and end["sim"] == 1.5
        assert end["wall"] >= begin["wall"]
        assert tracer.open_spans == 0

    def test_span_error_recorded_and_propagates(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("w"):
                raise ValueError("boom")
        end = tracer.events[-1]
        assert end["error"] == "ValueError: boom"

    def test_span_note_lands_on_end_event(self):
        tracer = SpanTracer()
        with tracer.span("w") as span:
            span.note(records=7)
        assert tracer.events[-1]["args"] == {"records": 7}

    def test_phase_tagging(self):
        tracer = SpanTracer()
        tracer.push_phase("sort")
        with tracer.span("inner"):
            pass
        tracer.pop_phase()
        with tracer.span("outer"):
            pass
        assert tracer.events[0]["phase"] == "sort"
        assert tracer.events[2]["phase"] == ""

    def test_complete_reuses_caller_stamps(self):
        tracer = SpanTracer()
        t0 = time.perf_counter()
        t1 = t0 + 0.125
        tracer.complete("task", t0, t1, kind="busy")
        begin, end = tracer.events
        assert end["wall"] - begin["wall"] == pytest.approx(0.125, abs=0.0)

    def test_complete_sim_override(self):
        tracer = SpanTracer(sim_time=lambda: 99.0)
        tracer.complete("token", 0.0, 1.0, sim0=2.0, sim1=3.5)
        begin, end = tracer.events
        assert begin["sim"] == 2.0 and end["sim"] == 3.5

    def test_bound_tracer_prefixes_and_composes(self):
        tracer = SpanTracer()
        node = tracer.bind(lambda: 4.0, prefix="node00/")
        with node.span("e", track="pipeline"):
            pass
        assert tracer.events[0]["track"] == "node00/pipeline"
        assert tracer.events[0]["sim"] == 4.0
        # Re-binding keeps the prefix and lets a new clock take over.
        reclocked = node.bind(lambda: 8.0)
        with reclocked.span("f"):
            pass
        assert tracer.events[2]["track"] == "node00/main"
        assert tracer.events[2]["sim"] == 8.0

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.begin("x") == -1
        assert NULL_TRACER.span("x") is NULL_TRACER.span("y")
        assert NULL_TRACER.bind(lambda: 0.0, prefix="p/") is NULL_TRACER
        with NULL_TRACER.span("x") as span:
            span.note(ignored=True)

    def test_write_dumps_all_files(self, tmp_path):
        tracer = SpanTracer(meta={"source": "unit"})
        with tracer.span("a", track="t"):
            pass
        tracer.instant("mark", track="t")
        files = tracer.write(tmp_path / "trace")
        for name in (EVENTS_FILE, MANIFEST_FILE, PERFETTO_FILE,
                     PERFETTO_SIM_FILE):
            assert (tmp_path / "trace" / name).exists()
        manifest = json.loads(files["manifest"].read_text())
        assert manifest["meta"] == {"source": "unit"}
        assert manifest["n_spans"] == 1 and manifest["open_spans"] == 0
        assert manifest["tracks"] == ["t"]
        events = load_events(files["events"])
        assert check_balanced(events) == 2  # the span + the instant
        for key in ("perfetto", "perfetto_sim"):
            validate_perfetto(json.loads(files[key].read_text()))


class TestAnalysis:
    def test_unbalanced_log_detected(self):
        tracer = SpanTracer()
        tracer.begin("leaked")
        with pytest.raises(TraceError, match="never ended"):
            check_balanced(tracer.events)

    def test_end_without_begin_raises(self):
        orphan = {"ph": "E", "id": 0, "name": "x", "track": "t",
                  "cat": "span", "det": False, "phase": "",
                  "wall": 0.0, "sim": 0.0}
        with pytest.raises(TraceError, match="without begin"):
            pair_spans([orphan])

    def test_load_events_rejects_malformed_line(self, tmp_path):
        log = tmp_path / "events.jsonl"
        log.write_text('{"ph": "B"}\nnot json\n')
        with pytest.raises(TraceError, match="malformed"):
            load_events(log)

    def test_build_perfetto_rejects_unknown_clock(self):
        with pytest.raises(TraceError, match="clock"):
            build_perfetto([], clock="tai")

    def test_validate_perfetto_requires_thread_names(self):
        trace = {"traceEvents": [{"ph": "X", "name": "a", "pid": 1,
                                  "tid": 1, "ts": 0.0, "dur": 1.0}]}
        with pytest.raises(TraceError, match="thread_name"):
            validate_perfetto(trace)

    def test_summarize_busy_and_overlap(self):
        tracer = SpanTracer()
        tracer.push_phase("sort")
        tracer.complete("phase-span", 0.0, 1.0, track="pipeline", cat="phase",
                        det=True)
        tracer.complete("task", 0.0, 0.4, track="worker-0", cat="executor",
                        kind="busy")
        tracer.complete("await", 0.5, 0.6, track="main", cat="executor",
                        kind="wait")
        summary = summarize(tracer.events)
        assert summary.phase_wall_s == {"phase-span": pytest.approx(1.0)}
        assert summary.par_busy_s == pytest.approx(0.4)
        assert summary.par_wait_s == pytest.approx(0.1)
        assert summary.overlap_saved_s == pytest.approx(0.3)
        assert summary.phase_overlap_s["sort"] == pytest.approx(0.3)
        assert summary.tracks["worker-0"].busy_s == pytest.approx(0.4)


class TestTracedAssembly:
    """End-to-end: a traced run reconciles with its own telemetry, and the
    deterministic export is byte-identical across worker counts."""

    def test_reconciles_and_sim_trace_is_worker_invariant(self, tmp_path):
        md, _ = tiny_dataset(tmp_path / "data", genome_length=2000,
                             read_length=50, coverage=20.0, min_overlap=25,
                             seed=11)
        sim_bytes = {}
        for workers in (1, 4):
            trace_dir = tmp_path / f"trace-w{workers}"
            result = Assembler(_config(workers, str(trace_dir))) \
                .assemble(md.store_path)
            events = load_events(trace_dir / EVENTS_FILE)
            check_balanced(events)
            verdict = reconcile(summarize(events), result.telemetry)
            assert verdict["ok"], verdict
            # Phase spans share their clock reads with PhaseStats, so the
            # agreement is far tighter than the ±1 ms acceptance bound.
            assert all(abs(d) <= 1e-3
                       for d in verdict["phase_delta_s"].values())
            assert abs(verdict["overlap_delta_s"]) <= 1e-6
            validate_perfetto(
                json.loads((trace_dir / PERFETTO_FILE).read_text()))
            sim_bytes[workers] = (trace_dir / PERFETTO_SIM_FILE).read_bytes()
            validate_perfetto(json.loads(sim_bytes[workers]))
        assert sim_bytes[1] == sim_bytes[4], \
            "deterministic sim trace differs across worker counts"

    def test_disabled_tracing_records_nothing(self, tmp_path):
        md, _ = tiny_dataset(tmp_path / "data", genome_length=1000,
                             read_length=50, coverage=10.0, min_overlap=25,
                             seed=5)
        result = Assembler(_config(2)).assemble(md.store_path)
        assert result.telemetry.tracer.enabled is False
        assert not list(tmp_path.glob("**/events.jsonl"))


class TestTracedDistributed:
    def test_cluster_and_token_tracks(self, tmp_path):
        md, _ = tiny_dataset(tmp_path / "data", genome_length=1500,
                             read_length=50, coverage=12.0, min_overlap=25,
                             seed=13)
        trace_dir = tmp_path / "trace-dist"
        result = DistributedAssembler(_config(1, str(trace_dir)), 2) \
            .assemble(md.store_path)
        events = load_events(trace_dir / EVENTS_FILE)
        check_balanced(events)
        validate_perfetto(json.loads((trace_dir / PERFETTO_FILE).read_text()))
        cluster = {e["name"] for e in events
                   if e["track"] == "cluster" and e["ph"] == "B"}
        assert {"map", "shuffle", "sort", "reduce", "compress"} <= cluster
        tokens = [e for e in events
                  if e["name"] == "token" and e["ph"] == "E"]
        assert len(tokens) == result.reduce_report.partitions_processed
        assert len(tokens) == sum(1 for hop in result.token_trace if hop["ok"])
        node_tracks = {e["track"] for e in events
                       if e["track"].startswith("node")}
        assert any(track.startswith("node00/") for track in node_tracks)
        assert any(track.startswith("node01/") for track in node_tracks)
        # Cluster phase spans follow Fig. 10 order and each one's modeled
        # extent is exactly the phase's reported critical-path seconds.
        spans, _ = pair_spans(events)
        by_name = {s["name"]: s for s in spans if s["track"] == "cluster"
                   and s["cat"] == "cluster"}
        order = ["map", "shuffle", "sort", "reduce", "compress"]
        for earlier, later in zip(order, order[1:]):
            assert by_name[earlier]["sim0"] <= by_name[later]["sim0"] + 1e-9
        for name in order:
            assert by_name[name]["sim1"] - by_name[name]["sim0"] == \
                pytest.approx(result.phase_seconds[name])

"""KV record layout and the partition store."""

import numpy as np
import pytest

from repro.errors import ConfigError, StreamProtocolError
from repro.extmem import IOAccountant, PartitionStore
from repro.extmem.records import kv_dtype, make_records, record_fields


class TestRecords:
    def test_widths(self):
        assert kv_dtype(1).itemsize == 12
        assert kv_dtype(2).itemsize == 20  # the paper's 128-bit + 32-bit pair

    def test_lanes_validation(self):
        with pytest.raises(ConfigError):
            kv_dtype(3)

    def test_make_and_split_single_lane(self):
        records = make_records(np.array([5, 6], dtype=np.uint64),
                               np.array([1, 2], dtype=np.uint32))
        keys, vals, aux = record_fields(records)
        assert keys.tolist() == [5, 6]
        assert vals.tolist() == [1, 2]
        assert aux is None

    def test_make_and_split_two_lanes(self):
        records = make_records(np.array([5], dtype=np.uint64),
                               np.array([1], dtype=np.uint32),
                               aux=np.array([9], dtype=np.uint64))
        _, _, aux = record_fields(records)
        assert aux.tolist() == [9]


class TestPartitionStore:
    def _records(self, n, seed=0):
        rng = np.random.default_rng(seed)
        return make_records(rng.integers(0, 99, n, dtype=np.uint64),
                            np.arange(n, dtype=np.uint32))

    def test_append_and_read(self, tmp_path):
        store = PartitionStore(tmp_path, kv_dtype(1))
        store.append("S", 30, self._records(10))
        store.append("S", 30, self._records(5, seed=1))
        store.append("P", 30, self._records(7))
        store.append("S", 31, self._records(3))
        store.finalize()
        assert store.lengths() == [30, 31]
        assert store.records_in("S", 30) == 15
        assert store.records_in("P", 30) == 7
        assert store.records_in("P", 31) == 0
        with store.open_run("S", 30) as reader:
            assert reader.total_records == 15

    def test_side_validation(self, tmp_path):
        store = PartitionStore(tmp_path, kv_dtype(1))
        with pytest.raises(ConfigError):
            store.append("Q", 30, self._records(1))

    def test_lengths_requires_finalize(self, tmp_path):
        store = PartitionStore(tmp_path, kv_dtype(1))
        store.append("S", 30, self._records(1))
        with pytest.raises(StreamProtocolError, match="finalize"):
            store.lengths()

    def test_sorted_path_distinct(self, tmp_path):
        store = PartitionStore(tmp_path, kv_dtype(1))
        assert store.path("S", 30) != store.path("S", 30, sorted_run=True)

    def test_delete(self, tmp_path):
        store = PartitionStore(tmp_path, kv_dtype(1))
        store.append("S", 30, self._records(4))
        store.finalize()
        store.delete("S", 30)
        assert store.records_in("S", 30) == 0
        store.delete("S", 30)  # idempotent

    def test_total_bytes(self, tmp_path):
        store = PartitionStore(tmp_path, kv_dtype(1), IOAccountant())
        store.append("S", 30, self._records(10))
        store.finalize()
        assert store.total_bytes() == 10 * 12

    def test_context_manager_finalizes(self, tmp_path):
        with PartitionStore(tmp_path, kv_dtype(1)) as store:
            store.append("P", 40, self._records(2))
        assert store.lengths() == [40]

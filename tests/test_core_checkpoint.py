"""Checkpoint/resume of the pipeline."""

import json

import numpy as np
import pytest

from repro import Assembler, AssemblyConfig
from repro.core.checkpoint import (CheckpointManager, config_fingerprint,
                                   GRAPH_FILE, STATE_FILE)
from repro.errors import ConfigError
from repro.graph import GreedyStringGraph


class TestCheckpointManager:
    def test_phase_ledger(self, tmp_path):
        manager = CheckpointManager(tmp_path, "abc")
        assert not manager.completed("load")
        manager.mark("load")
        manager.mark("map")
        reloaded = CheckpointManager(tmp_path, "abc")
        assert reloaded.completed("load") and reloaded.completed("map")

    def test_fingerprint_mismatch_discards(self, tmp_path):
        CheckpointManager(tmp_path, "abc").mark("load")
        other = CheckpointManager(tmp_path, "different")
        assert not other.completed("load")

    def test_corrupt_state_tolerated(self, tmp_path):
        (tmp_path / STATE_FILE).write_text("{not json")
        manager = CheckpointManager(tmp_path, "abc")
        assert not manager.completed("load")

    def test_invalidate_from(self, tmp_path):
        manager = CheckpointManager(tmp_path, "x")
        for phase in ("load", "map", "sort", "reduce"):
            manager.mark(phase)
        manager.invalidate_from("sort")
        assert manager.completed("map")
        assert not manager.completed("sort")
        assert not manager.completed("reduce")

    def test_graph_roundtrip(self, tmp_path):
        graph = GreedyStringGraph(10, 30)
        graph.add_candidates(np.array([0, 4]), np.array([2, 8]), 20)
        manager = CheckpointManager(tmp_path, "g")
        manager.save_graph(graph)
        restored = manager.load_graph()
        assert restored is not None
        restored.check_invariants()
        assert restored.n_edges == graph.n_edges
        assert np.array_equal(restored.target, graph.target)

    def test_graph_missing_or_corrupt(self, tmp_path):
        manager = CheckpointManager(tmp_path, "g")
        assert manager.load_graph() is None
        (tmp_path / GRAPH_FILE).write_bytes(b"junk")
        assert manager.load_graph() is None


class TestFingerprint:
    def test_sensitive_to_config_and_source(self):
        a = config_fingerprint(AssemblyConfig(min_overlap=20), "s1")
        b = config_fingerprint(AssemblyConfig(min_overlap=21), "s1")
        c = config_fingerprint(AssemblyConfig(min_overlap=20), "s2")
        assert len({a, b, c}) == 3

    def test_insensitive_to_keep_workdir(self):
        import dataclasses
        base = AssemblyConfig(min_overlap=20)
        kept = dataclasses.replace(base, keep_workdir=True)
        assert config_fingerprint(base, "s") == config_fingerprint(kept, "s")


class TestResume:
    def test_requires_workdir(self, tiny_md):
        with pytest.raises(ConfigError, match="workdir"):
            Assembler(AssemblyConfig(min_overlap=25)).assemble(
                tiny_md.store_path, resume=True)

    def test_resumed_run_matches_fresh(self, tmp_path, tiny_md):
        config = AssemblyConfig(min_overlap=25)
        fresh = Assembler(config).assemble(tiny_md.store_path,
                                           workdir=tmp_path / "fresh")
        work = tmp_path / "resumable"
        first = Assembler(config).assemble(tiny_md.store_path, workdir=work,
                                           resume=True)
        # Everything is checkpointed now; resume skips load..reduce.
        second = Assembler(config).assemble(tiny_md.store_path, workdir=work,
                                            resume=True)
        for result in (first, second):
            assert result.reduce_report.edges_added \
                == fresh.reduce_report.edges_added
            assert np.array_equal(result.contigs.flat_codes,
                                  first.contigs.flat_codes)
        # The resumed run re-read no partitions for sorting.
        state = json.loads((work / STATE_FILE).read_text())
        assert set(state["completed"]) == {"load", "map", "sort", "reduce"}

    def test_resume_after_partial_state(self, tmp_path, tiny_md):
        """Simulate an interruption: keep load+map+sort, drop reduce."""
        config = AssemblyConfig(min_overlap=25)
        work = tmp_path / "partial"
        full = Assembler(config).assemble(tiny_md.store_path, workdir=work,
                                          resume=True)
        manager = CheckpointManager(
            work, json.loads((work / STATE_FILE).read_text())["fingerprint"])
        manager.invalidate_from("reduce")
        (work / GRAPH_FILE).unlink()
        resumed = Assembler(config).assemble(tiny_md.store_path, workdir=work,
                                             resume=True)
        assert resumed.reduce_report.edges_added == full.reduce_report.edges_added

    def test_config_change_restarts_clean(self, tmp_path, tiny_md):
        work = tmp_path / "w"
        Assembler(AssemblyConfig(min_overlap=25)).assemble(
            tiny_md.store_path, workdir=work, resume=True)
        changed = Assembler(AssemblyConfig(min_overlap=30)).assemble(
            tiny_md.store_path, workdir=work, resume=True)
        assert changed.map_report.lengths[0] == 30
        state = json.loads((work / STATE_FILE).read_text())
        assert set(state["completed"]) >= {"load", "map", "sort", "reduce"}

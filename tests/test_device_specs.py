"""Device catalog and hardware specs."""

import pytest

from repro.device import DeviceSpec, DiskSpec, HostSpec, device_catalog, get_device_spec
from repro.errors import ConfigError
from repro.units import parse_size


class TestCatalog:
    def test_all_paper_gpus_present(self):
        assert set(device_catalog()) == {"K20X", "K40", "P40", "P100", "V100"}

    def test_published_capacities(self):
        assert get_device_spec("K40").mem_bytes == parse_size("12 GB")
        assert get_device_spec("K20X").mem_bytes == parse_size("6 GB")
        assert get_device_spec("P40").mem_bytes == parse_size("24 GB")

    def test_fig9_bandwidth_inversion(self):
        """P40 has more cores but far less bandwidth than P100 (Fig. 9)."""
        p40, p100 = get_device_spec("P40"), get_device_spec("P100")
        assert p40.cores > p100.cores
        assert p40.mem_bandwidth < p100.mem_bandwidth

    def test_v100_is_fastest_memory(self):
        bandwidths = {name: spec.mem_bandwidth
                      for name, spec in device_catalog().items()}
        assert max(bandwidths, key=bandwidths.get) == "V100"

    def test_case_insensitive_lookup(self):
        assert get_device_spec("v100").name == "V100"

    def test_unknown_device(self):
        with pytest.raises(ConfigError, match="unknown device"):
            get_device_spec("H100")

    def test_flops_positive(self):
        for spec in device_catalog().values():
            assert spec.flops > 1e12  # all are TFLOP-class parts


class TestOtherSpecs:
    def test_disk_defaults(self):
        disk = DiskSpec()
        assert disk.read_bandwidth > 0 and disk.write_bandwidth > 0

    def test_ssd_faster(self):
        assert DiskSpec.ssd().read_bandwidth > DiskSpec().read_bandwidth
        assert DiskSpec.ssd().seek_seconds < DiskSpec().seek_seconds

    def test_host_defaults(self):
        host = HostSpec()
        assert host.cores == 20  # dual 10-core Xeons of the paper's nodes

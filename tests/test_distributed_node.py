"""WorkerNode internals: map accumulation, partition serving, shuffle."""

import numpy as np
import pytest

from repro import AssemblyConfig
from repro.distributed import ActiveMessageLayer, NetworkSpec, WorkerNode
from repro.distributed.node import FETCH_PARTITION
from repro.seq.packing import PackedReadStore


@pytest.fixture()
def cluster_pair(tmp_path, tiny_md):
    config = AssemblyConfig(min_overlap=25)
    messages = ActiveMessageLayer(NetworkSpec())
    nodes = [WorkerNode(i, config, tmp_path, messages) for i in range(2)]
    store = PackedReadStore.open(tiny_md.store_path)
    yield nodes, store, messages
    store.close()


class TestMapBlocks:
    def test_blocks_accumulate(self, cluster_pair):
        nodes, store, _ = cluster_pair
        node = nodes[0]
        half = store.n_reads // 2
        node.map_block(store, 0, half)
        node.map_block(store, half, store.n_reads)
        node.finish_map()
        assert node.mapped_reads == store.n_reads
        length = 25
        assert node.map_partitions.records_in("S", length) == 2 * store.n_reads

    def test_private_workdirs(self, cluster_pair):
        nodes, _, _ = cluster_pair
        assert nodes[0].ctx.workdir != nodes[1].ctx.workdir


class TestServing:
    def test_fetch_partition_roundtrip(self, cluster_pair):
        nodes, store, messages = cluster_pair
        nodes[0].map_block(store, 0, 20)
        nodes[0].finish_map()
        records = messages.request(1, 0, FETCH_PARTITION, "S", 25)
        assert records.shape[0] == 2 * 20
        assert nodes[1].ctx.clock.seconds("network") > 0

    def test_fetch_missing_partition_is_empty(self, cluster_pair):
        nodes, _, messages = cluster_pair
        nodes[0].finish_map()
        records = messages.request(1, 0, FETCH_PARTITION, "S", 30)
        assert records.shape[0] == 0


class TestShuffle:
    def test_pull_aggregates_all_peers(self, cluster_pair):
        nodes, store, _ = cluster_pair
        half = store.n_reads // 2
        nodes[0].map_block(store, 0, half)
        nodes[1].map_block(store, half, store.n_reads)
        for node in nodes:
            node.finish_map()
        pulled = nodes[0].pull_owned_partitions(nodes, [25, 27])
        assert pulled > 0
        assert nodes[0].shuffled.records_in("S", 25) == 2 * store.n_reads
        assert nodes[0].shuffled.records_in("P", 27) == 2 * store.n_reads
        assert nodes[0].owned_lengths == [25, 27]

    def test_vertex_ids_globally_consistent(self, cluster_pair):
        """Blocks mapped on different nodes carry their global read-ids."""
        nodes, store, _ = cluster_pair
        half = store.n_reads // 2
        nodes[0].map_block(store, 0, half)
        nodes[1].map_block(store, half, store.n_reads)
        for node in nodes:
            node.finish_map()
        nodes[0].pull_owned_partitions(nodes, [25])
        with nodes[0].shuffled.open_run("S", 25) as reader:
            vertices = reader.read_all()["val"]
        read_ids = np.unique(vertices >> 1)
        assert read_ids.min() == 0
        assert read_ids.max() == store.n_reads - 1
        assert read_ids.shape[0] == store.n_reads

    def test_drop_map_partitions(self, cluster_pair):
        nodes, store, _ = cluster_pair
        nodes[0].map_block(store, 0, 10)
        nodes[0].finish_map()
        nodes[0].drop_map_partitions()
        assert list(nodes[0].map_partitions.root.glob("*.run")) == []

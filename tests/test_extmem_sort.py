"""The hybrid two-level external sort."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import MemoryPool, SimClock, VirtualGPU
from repro.errors import ConfigError, HostMemoryError
from repro.extmem import (ExternalSorter, IOAccountant, RunReader, RunWriter,
                          derive_fanout, merge_rounds_for)
from repro.extmem.records import kv_dtype, make_records
from repro.model.sorting import predicted_sort_passes


def _make_sorter(host_capacity=200_000, device_capacity=20_000, lanes=1,
                 accountant=None, merge_fanout=2):
    dtype = kv_dtype(lanes)
    gpu = VirtualGPU("K40", capacity_bytes=device_capacity, clock=SimClock())
    host_pool = MemoryPool("host", host_capacity, HostMemoryError)
    m_h = int(host_capacity * 0.85) // dtype.itemsize
    m_d = int(device_capacity * 0.85) // dtype.itemsize
    sorter = ExternalSorter(gpu=gpu, host_pool=host_pool, accountant=accountant,
                            dtype=dtype, host_block_pairs=m_h,
                            device_block_pairs=m_d, merge_fanout=merge_fanout)
    return sorter, gpu, host_pool


def _write_run(path, records, accountant=None):
    with RunWriter(path, records.dtype, accountant) as writer:
        writer.append(records)


def _read_run(path, dtype, accountant=None):
    with RunReader(path, dtype, accountant) as reader:
        return reader.read_all()


class TestSortFile:
    @given(st.integers(0, 20_000), st.integers(0, 2**32 - 1))
    @settings(max_examples=12, deadline=None)
    def test_sorts_any_size(self, tmp_path_factory, n, seed):
        tmp_path = tmp_path_factory.mktemp("sort")
        rng = np.random.default_rng(seed)
        records = make_records(rng.integers(0, 2**62, n, dtype=np.uint64),
                               np.arange(n, dtype=np.uint32))
        sorter, _, _ = _make_sorter()
        _write_run(tmp_path / "in", records)
        report = sorter.sort_file(tmp_path / "in", tmp_path / "out")
        assert report.n_records == n
        out = _read_run(tmp_path / "out", records.dtype)
        assert np.array_equal(out["key"], np.sort(records["key"]))
        assert sorted(out["val"].tolist()) == sorted(records["val"].tolist())

    def test_empty_input(self, tmp_path):
        sorter, _, _ = _make_sorter()
        (tmp_path / "in").write_bytes(b"")
        report = sorter.sort_file(tmp_path / "in", tmp_path / "out")
        assert report.n_records == 0 and report.disk_passes == 0
        assert (tmp_path / "out").stat().st_size == 0

    def test_budgets_respected(self, tmp_path, rng):
        records = make_records(rng.integers(0, 2**62, 60_000, dtype=np.uint64),
                               np.arange(60_000, dtype=np.uint32))
        sorter, gpu, host_pool = _make_sorter()
        _write_run(tmp_path / "in", records)
        sorter.sort_file(tmp_path / "in", tmp_path / "out")
        assert gpu.pool.lifetime_peak_bytes <= gpu.pool.capacity_bytes
        assert host_pool.lifetime_peak_bytes <= host_pool.capacity_bytes

    def test_pass_counts_scale_with_memory(self, tmp_path, rng):
        """Halving host memory adds merge rounds — the Table II/III effect."""
        records = make_records(rng.integers(0, 2**62, 40_000, dtype=np.uint64),
                               np.arange(40_000, dtype=np.uint32))
        passes = {}
        for name, host_capacity in (("big", 2_000_000), ("small", 250_000)):
            sorter, _, _ = _make_sorter(host_capacity=host_capacity)
            _write_run(tmp_path / f"in_{name}", records)
            report = sorter.sort_file(tmp_path / f"in_{name}",
                                      tmp_path / f"out_{name}")
            passes[name] = report.disk_passes
        assert passes["big"] == 1
        assert passes["small"] > passes["big"]

    def test_single_block_single_pass(self, tmp_path, rng):
        records = make_records(rng.integers(0, 2**62, 1000, dtype=np.uint64),
                               np.arange(1000, dtype=np.uint32))
        sorter, _, _ = _make_sorter()
        _write_run(tmp_path / "in", records)
        report = sorter.sort_file(tmp_path / "in", tmp_path / "out")
        assert report.initial_runs == 1
        assert report.merge_rounds == 0
        assert report.disk_passes == 1

    def test_disk_bytes_match_passes(self, tmp_path, rng):
        accountant = IOAccountant()
        records = make_records(rng.integers(0, 2**62, 30_000, dtype=np.uint64),
                               np.arange(30_000, dtype=np.uint32))
        sorter, _, _ = _make_sorter(accountant=accountant)
        _write_run(tmp_path / "in", records, accountant)
        written_before = accountant.write_bytes
        report = sorter.sort_file(tmp_path / "in", tmp_path / "out")
        sorted_writes = accountant.write_bytes - written_before
        # Run formation writes everything once; each merge round rewrites at
        # most everything (an odd carried-over run is not rewritten).
        assert records.nbytes <= sorted_writes <= report.disk_passes * records.nbytes

    def test_two_lane_records(self, tmp_path, rng):
        records = make_records(rng.integers(0, 2**62, 5000, dtype=np.uint64),
                               np.arange(5000, dtype=np.uint32),
                               aux=rng.integers(0, 2**62, 5000, dtype=np.uint64))
        sorter, _, _ = _make_sorter(lanes=2)
        _write_run(tmp_path / "in", records)
        sorter.sort_file(tmp_path / "in", tmp_path / "out")
        out = _read_run(tmp_path / "out", records.dtype)
        order = np.argsort(records["key"], kind="stable")
        assert np.array_equal(out["key"], records["key"][order])
        # aux stays glued to its record
        pairs = set(zip(records["key"].tolist(), records["aux"].tolist()))
        assert set(zip(out["key"].tolist(), out["aux"].tolist())) == pairs

    def test_scratch_cleaned_up(self, tmp_path, rng):
        records = make_records(rng.integers(0, 2**62, 20_000, dtype=np.uint64),
                               np.arange(20_000, dtype=np.uint32))
        sorter, _, _ = _make_sorter()
        _write_run(tmp_path / "in", records)
        sorter.sort_file(tmp_path / "in", tmp_path / "out")
        assert list(tmp_path.glob("out.scratch*")) == []


class TestMergeFanout:
    @given(n=st.integers(0, 20_000), seed=st.integers(0, 2**32 - 1),
           host_capacity=st.integers(60_000, 400_000),
           device_capacity=st.integers(4_000, 40_000),
           fanout=st.sampled_from([2, 3, 4, 8]))
    @settings(max_examples=16, deadline=None)
    def test_sorted_output_and_pass_formula(self, tmp_path_factory, n, seed,
                                            host_capacity, device_capacity,
                                            fanout):
        """For any (m_h, m_d, k) split the output equals np.sort by key and
        ``disk_passes == 1 + ⌈log_k R⌉`` — the analytic model agrees."""
        tmp_path = tmp_path_factory.mktemp("kway")
        rng = np.random.default_rng(seed)
        records = make_records(rng.integers(0, 2**62, n, dtype=np.uint64),
                               np.arange(n, dtype=np.uint32))
        sorter, gpu, host_pool = _make_sorter(
            host_capacity=host_capacity,
            device_capacity=min(device_capacity, host_capacity),
            merge_fanout=fanout)
        _write_run(tmp_path / "in", records)
        report = sorter.sort_file(tmp_path / "in", tmp_path / "out")
        out = _read_run(tmp_path / "out", records.dtype)
        assert np.array_equal(out["key"], np.sort(records["key"]))
        assert sorted(out["val"].tolist()) == sorted(records["val"].tolist())
        assert report.fanout == fanout
        if n:
            assert report.merge_rounds == merge_rounds_for(report.initial_runs,
                                                           fanout)
            if report.initial_runs > 1:
                # 1 + ceil(log_k R), computed away from float-log rounding.
                log_k = math.log(report.initial_runs) / math.log(fanout)
                assert report.disk_passes == 1 + math.ceil(round(log_k, 9))
            else:
                assert report.disk_passes == 1
            assert report.disk_passes == predicted_sort_passes(
                n, sorter.m_h, merge_fanout=fanout)
        assert gpu.pool.lifetime_peak_bytes <= gpu.pool.capacity_bytes
        assert host_pool.lifetime_peak_bytes <= host_pool.capacity_bytes

    def test_fanout_cuts_passes_and_disk_bytes(self, tmp_path, rng):
        """With >= 8 initial runs, k=4 drops ``1+⌈log₂R⌉`` to ``1+⌈log₄R⌉``
        and the measured disk traffic shrinks with the pass count."""
        records = make_records(rng.integers(0, 2**62, 60_000, dtype=np.uint64),
                               np.arange(60_000, dtype=np.uint32))
        measured = {}
        for fanout in (2, 4):
            accountant = IOAccountant()
            sorter, _, _ = _make_sorter(host_capacity=120_000,
                                        accountant=accountant,
                                        merge_fanout=fanout)
            _write_run(tmp_path / f"in{fanout}", records)
            before = accountant.total_bytes
            report = sorter.sort_file(tmp_path / f"in{fanout}",
                                      tmp_path / f"out{fanout}")
            measured[fanout] = (report, accountant.total_bytes - before)
        report2, bytes2 = measured[2]
        report4, bytes4 = measured[4]
        runs = report2.initial_runs
        assert runs >= 8
        assert report2.disk_passes == 1 + math.ceil(math.log2(runs))
        assert report4.disk_passes == 1 + math.ceil(math.log(runs, 4))
        assert report4.disk_passes < report2.disk_passes
        assert bytes4 < bytes2

    def test_auto_fanout_derived_from_budgets(self, tmp_path, rng):
        records = make_records(rng.integers(0, 2**62, 10_000, dtype=np.uint64),
                               np.arange(10_000, dtype=np.uint32))
        sorter, _, _ = _make_sorter(merge_fanout=0)
        assert sorter.fanout == derive_fanout(sorter.m_h, sorter.m_d) >= 2
        _write_run(tmp_path / "in", records)
        report = sorter.sort_file(tmp_path / "in", tmp_path / "out")
        assert report.fanout == sorter.fanout
        out = _read_run(tmp_path / "out", records.dtype)
        assert np.array_equal(out["key"], np.sort(records["key"]))

    def test_fanout_validated(self):
        with pytest.raises(ConfigError, match="merge_fanout"):
            _make_sorter(merge_fanout=1)
        with pytest.raises(ConfigError, match="merge_fanout"):
            _make_sorter(merge_fanout=-3)


class TestCrashSafety:
    def test_failing_merge_leaves_no_scratch(self, tmp_path, rng):
        """An exception mid-merge must tear the .scratch directory down and
        must not have produced any output file."""
        records = make_records(rng.integers(0, 2**62, 60_000, dtype=np.uint64),
                               np.arange(60_000, dtype=np.uint32))
        sorter, _, _ = _make_sorter(host_capacity=120_000)
        sorter.merge_windows = lambda parts: (_ for _ in ()).throw(
            RuntimeError("injected merge failure"))
        sorter.merge_blocks_in_host = sorter.merge_windows
        _write_run(tmp_path / "in", records)
        with pytest.raises(RuntimeError, match="injected"):
            sorter.sort_file(tmp_path / "in", tmp_path / "out")
        assert not (tmp_path / "out.scratch").exists()
        assert not (tmp_path / "out").exists()
        assert list(tmp_path.glob("*.scratch*")) == []

    def test_failing_run_formation_leaves_no_scratch(self, tmp_path, rng):
        records = make_records(rng.integers(0, 2**62, 30_000, dtype=np.uint64),
                               np.arange(30_000, dtype=np.uint32))
        sorter, _, _ = _make_sorter()
        calls = {"n": 0}
        original = sorter.sort_block_in_host

        def fail_second(block):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("injected sort failure")
            return original(block)

        sorter.sort_block_in_host = fail_second
        _write_run(tmp_path / "in", records)
        with pytest.raises(RuntimeError, match="injected"):
            sorter.sort_file(tmp_path / "in", tmp_path / "out")
        assert not (tmp_path / "out.scratch").exists()
        assert not (tmp_path / "out").exists()

    def test_success_is_atomic_and_clean(self, tmp_path, rng):
        records = make_records(rng.integers(0, 2**62, 5_000, dtype=np.uint64),
                               np.arange(5_000, dtype=np.uint32))
        sorter, _, _ = _make_sorter()
        _write_run(tmp_path / "in", records)
        sorter.sort_file(tmp_path / "in", tmp_path / "out")
        assert (tmp_path / "out").exists()
        assert not (tmp_path / "out.scratch").exists()


class TestConfigValidation:
    def test_block_sizes_validated(self):
        gpu = VirtualGPU("K40", capacity_bytes=1000)
        pool = MemoryPool("host", 1000, HostMemoryError)
        with pytest.raises(ConfigError):
            ExternalSorter(gpu=gpu, host_pool=pool, accountant=None,
                           dtype=kv_dtype(1), host_block_pairs=1,
                           device_block_pairs=10)

    def test_device_block_clamped(self):
        gpu = VirtualGPU("K40", capacity_bytes=100_000)
        pool = MemoryPool("host", 100_000, HostMemoryError)
        sorter = ExternalSorter(gpu=gpu, host_pool=pool, accountant=None,
                                dtype=kv_dtype(1), host_block_pairs=10,
                                device_block_pairs=1000)
        assert sorter.m_d <= sorter.m_h

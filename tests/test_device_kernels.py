"""Numpy kernel semantics: sort, radix reference, merge, bounds, scan."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device.kernels import (exclusive_scan, gather, lsd_radix_sort_indices,
                                  merge_sorted_records, merge_sorted_records_k,
                                  require_sorted, scatter, sort_records,
                                  vectorized_bounds)
from repro.errors import SortContractError

keys_strategy = st.lists(st.integers(0, 2**64 - 1), min_size=0, max_size=300)


def _keys(values) -> np.ndarray:
    return np.array(values, dtype=np.uint64)


class TestSortRecords:
    @given(keys_strategy)
    def test_matches_numpy_sort(self, values):
        keys = _keys(values)
        payload = np.arange(keys.shape[0], dtype=np.uint32)
        sorted_keys, (sorted_payload,) = sort_records(keys, payload)
        assert np.array_equal(sorted_keys, np.sort(keys))
        # payload permuted consistently
        assert np.array_equal(keys[sorted_payload], sorted_keys)

    def test_payload_length_checked(self):
        with pytest.raises(SortContractError):
            sort_records(_keys([1, 2]), np.zeros(3, dtype=np.uint32))

    @given(keys_strategy)
    def test_stability(self, values):
        keys = _keys(values)
        payload = np.arange(keys.shape[0], dtype=np.int64)
        _, (sorted_payload,) = sort_records(keys, payload)
        # equal keys keep their original relative order
        sorted_keys = keys[sorted_payload]
        for i in range(1, keys.shape[0]):
            if sorted_keys[i] == sorted_keys[i - 1]:
                assert sorted_payload[i] > sorted_payload[i - 1]


class TestRadixReference:
    @given(keys_strategy)
    @settings(max_examples=50)
    def test_equals_stable_argsort(self, values):
        keys = _keys(values)
        assert np.array_equal(lsd_radix_sort_indices(keys),
                              np.argsort(keys, kind="stable"))

    def test_full_width_keys(self, rng):
        keys = rng.integers(0, 2**63, 2000, dtype=np.uint64) * 2 + 1
        assert np.array_equal(keys[lsd_radix_sort_indices(keys)], np.sort(keys))


class TestMerge:
    @given(keys_strategy, keys_strategy)
    @settings(max_examples=60)
    def test_merge_equals_sorted_concat(self, a_vals, b_vals):
        a = np.sort(_keys(a_vals))
        b = np.sort(_keys(b_vals))
        pa = np.arange(a.shape[0], dtype=np.uint32)
        pb = np.arange(b.shape[0], dtype=np.uint32) + 1000
        merged_keys, (merged_payload,) = merge_sorted_records(a, (pa,), b, (pb,))
        assert np.array_equal(merged_keys, np.sort(np.concatenate([a, b])))
        assert merged_payload.shape[0] == a.shape[0] + b.shape[0]

    def test_a_precedes_equal_b(self):
        a = _keys([5, 5])
        b = _keys([5])
        _, (payload,) = merge_sorted_records(a, (np.array([0, 1]),),
                                             b, (np.array([9]),))
        assert payload.tolist() == [0, 1, 9]

    def test_structured_payloads(self):
        dtype = np.dtype([("key", "<u8"), ("val", "<u4")])
        a = np.array([(1, 10), (3, 30)], dtype=dtype)
        b = np.array([(2, 20)], dtype=dtype)
        _, (merged,) = merge_sorted_records(a["key"], (a,), b["key"], (b,))
        assert merged["val"].tolist() == [10, 20, 30]

    def test_arity_mismatch(self):
        with pytest.raises(SortContractError):
            merge_sorted_records(_keys([1]), (np.zeros(1),), _keys([2]), ())


class TestMergeK:
    @given(st.lists(st.lists(st.integers(0, 2**64 - 1), min_size=0,
                             max_size=120), min_size=1, max_size=5))
    @settings(max_examples=60)
    def test_equals_pairwise_fold(self, runs_values):
        """The gathered k-way kernel matches folding the binary merge."""
        runs = [np.sort(_keys(values)) for values in runs_values]
        payloads = [np.arange(run.shape[0], dtype=np.uint32) + 1000 * index
                    for index, run in enumerate(runs)]
        merged_keys, (merged_payload,) = merge_sorted_records_k(
            tuple(runs), tuple((p,) for p in payloads))
        folded_keys, folded_payload = runs[0], payloads[0]
        for run, payload in zip(runs[1:], payloads[1:]):
            folded_keys, (folded_payload,) = merge_sorted_records(
                folded_keys, (folded_payload,), run, (payload,))
        assert np.array_equal(merged_keys, folded_keys)
        assert np.array_equal(merged_payload, folded_payload)

    def test_earlier_run_precedes_equal_later(self):
        runs = (_keys([5, 5]), _keys([5]), _keys([5]))
        payloads = ((np.array([0, 1]),), (np.array([2]),), (np.array([3]),))
        _, (payload,) = merge_sorted_records_k(runs, payloads)
        assert payload.tolist() == [0, 1, 2, 3]

    def test_structured_payloads(self):
        dtype = np.dtype([("key", "<u8"), ("val", "<u4")])
        runs = [np.array([(1, 10), (4, 40)], dtype=dtype),
                np.array([(2, 20)], dtype=dtype),
                np.array([(3, 30), (5, 50)], dtype=dtype)]
        _, (merged,) = merge_sorted_records_k(
            tuple(run["key"] for run in runs), tuple((run,) for run in runs))
        assert merged["val"].tolist() == [10, 20, 30, 40, 50]

    def test_contract_violations(self):
        with pytest.raises(SortContractError):
            merge_sorted_records_k((), ())
        with pytest.raises(SortContractError):
            merge_sorted_records_k((_keys([1]), _keys([2])),
                                   ((np.zeros(1),), ()))


class TestBounds:
    @given(keys_strategy, keys_strategy)
    @settings(max_examples=60)
    def test_counts_are_occurrences(self, hay_vals, query_vals):
        haystack = np.sort(_keys(hay_vals))
        queries = _keys(query_vals)
        lower, upper = vectorized_bounds(haystack, queries)
        counts = upper - lower
        for query, count in zip(queries, counts):
            assert count == int((haystack == query).sum())

    def test_lower_is_first_occurrence(self):
        haystack = _keys([1, 3, 3, 3, 7])
        lower, upper = vectorized_bounds(haystack, _keys([3]))
        assert lower[0] == 1 and upper[0] == 4


class TestScanGatherScatter:
    def test_exclusive_scan(self):
        assert exclusive_scan(np.array([3, 1, 4])).tolist() == [0, 3, 4]
        assert exclusive_scan(np.array([])).tolist() == []

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
    def test_scan_shifts_cumsum(self, values):
        arr = np.array(values)
        out = exclusive_scan(arr)
        assert np.array_equal(out[1:], np.cumsum(arr)[:-1])
        assert out[0] == 0

    def test_gather(self):
        source = np.array([10, 20, 30])
        assert gather(source, np.array([2, 0])).tolist() == [30, 10]

    def test_scatter(self):
        out = scatter(np.array([5, 6]), np.array([2, 0]), 4)
        assert out.tolist() == [6, 0, 5, 0]

    def test_scatter_rejects_duplicates(self):
        with pytest.raises(SortContractError, match="duplicates"):
            scatter(np.array([1, 2]), np.array([0, 0]), 2)

    def test_scatter_length_mismatch(self):
        with pytest.raises(SortContractError):
            scatter(np.array([1]), np.array([0, 1]), 2)


class TestRequireSorted:
    def test_accepts_sorted(self):
        require_sorted(_keys([1, 2, 2, 9]), context="t")

    def test_rejects_unsorted(self):
        with pytest.raises(SortContractError, match="not sorted"):
            require_sorted(_keys([2, 1]), context="t")

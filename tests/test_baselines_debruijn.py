"""De Bruijn assembler and the repeat-collapse demonstration."""

import numpy as np
import pytest

from repro.baselines import DeBruijnAssembler
from repro.baselines.debruijn import encode_kmers
from repro.errors import ConfigError
from repro.seq.alphabet import decode, encode, reverse_complement
from repro.seq.records import ReadBatch
from repro.seq.simulate import ReadSimulator, simulate_genome


class TestEncodeKmers:
    def test_known_values(self):
        codes = encode("ACGT")[None, :]
        kmers = encode_kmers(codes, 2)
        # AC=0b0001, CG=0b0110, GT=0b1011
        assert kmers.tolist() == [1, 6, 11]

    def test_count(self):
        codes = np.zeros((3, 10), dtype=np.uint8)
        assert encode_kmers(codes, 4).shape[0] == 3 * 7

    def test_validation(self):
        codes = np.zeros((1, 10), dtype=np.uint8)
        with pytest.raises(ConfigError):
            encode_kmers(codes, 1)
        with pytest.raises(ConfigError):
            encode_kmers(codes, 11)


class TestAssembly:
    def _reads(self, genome):
        return ReadSimulator(genome=genome, read_length=40, coverage=20.0,
                             seed=3).all_reads()

    def test_contigs_are_genome_substrings(self):
        genome = simulate_genome(900, seed=12)
        result = DeBruijnAssembler(k=21).assemble(self._reads(genome))
        forward = decode(genome)
        backward = decode(reverse_complement(genome))
        for contig in result.contigs:
            text = decode(contig)
            assert text in forward or text in backward

    def test_repeat_free_genome_assembles_long(self):
        genome = simulate_genome(900, seed=12)
        result = DeBruijnAssembler(k=21).assemble(self._reads(genome))
        assert result.stats()["n50"] > 500

    def test_repeats_longer_than_k_collapse(self):
        """The paper's §II.A.1 motivation: repeats longer than k (but shorter
        than a read) shatter the de Bruijn assembly while leaving the string
        graph essentially untouched. Compare each assembler against itself
        with and without repeats."""
        from repro.baselines import SGAAssembler

        def n50s(repeat_fraction):
            genome = simulate_genome(3000, seed=13,
                                     repeat_fraction=repeat_fraction,
                                     repeat_length=30)
            reads = ReadSimulator(genome=genome, read_length=40,
                                  coverage=30.0, seed=3).all_reads()
            debruijn = DeBruijnAssembler(k=21).assemble(reads).stats()["n50"]
            string_graph = SGAAssembler(min_overlap=20).assemble(reads)
            return debruijn, string_graph.stats()["n50"]

        debruijn_clean, sg_clean = n50s(0.0)
        debruijn_repeat, sg_repeat = n50s(0.25)
        debruijn_degradation = debruijn_clean / debruijn_repeat
        sg_degradation = sg_clean / max(1, sg_repeat)
        assert debruijn_degradation > 5.0
        assert sg_degradation < 1.5
        assert debruijn_degradation > 3 * sg_degradation

    def test_min_count_filters_noise(self):
        genome = simulate_genome(600, seed=14)
        reads = self._reads(genome)
        strict = DeBruijnAssembler(k=21, min_count=2).assemble(reads)
        loose = DeBruijnAssembler(k=21, min_count=1).assemble(reads)
        assert strict.n_kmers <= loose.n_kmers

    def test_validation(self):
        with pytest.raises(ConfigError):
            DeBruijnAssembler(k=5, min_count=0)

"""Full overlap graph and transitive reduction (the D3 ablation substrate)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph.simplify import FullOverlapGraph


class TestEdges:
    def test_keeps_longest_per_pair(self):
        graph = FullOverlapGraph(3, 10)
        graph.add_edge(0, 2, 5)
        graph.add_edge(0, 2, 7)
        graph.add_edge(0, 2, 6)
        assert graph.out_edges(0) == [(2, 7)]
        assert graph.n_edges == 1

    def test_bulk_skips_same_read(self):
        graph = FullOverlapGraph(2, 10)
        graph.add_edges(np.array([0, 0]), np.array([1, 2]), np.array([5, 5]))
        assert graph.n_edges == 1

    def test_overlap_validation(self):
        graph = FullOverlapGraph(2, 10)
        with pytest.raises(ConfigError):
            graph.add_edge(0, 2, 10)


class TestTransitiveReduction:
    def test_textbook_triangle(self):
        """u→v (8), v→w (8), u→w (6): with L=10, 8+8-10=6 so u→w is redundant."""
        graph = FullOverlapGraph(3, 10)
        graph.add_edge(0, 2, 8)
        graph.add_edge(2, 4, 8)
        graph.add_edge(0, 4, 6)
        removed = graph.transitive_reduction()
        assert removed == 1
        assert graph.out_edges(0) == [(2, 8)]
        assert graph.out_edges(2) == [(4, 8)]

    def test_non_transitive_kept(self):
        """Same triangle but the spelled lengths don't line up: keep all."""
        graph = FullOverlapGraph(3, 10)
        graph.add_edge(0, 2, 8)
        graph.add_edge(2, 4, 8)
        graph.add_edge(0, 4, 5)  # 8+8-10=6 != 5
        assert graph.transitive_reduction() == 0
        assert graph.n_edges == 3

    def test_chain_of_four(self):
        graph = FullOverlapGraph(4, 10)
        for i in range(3):
            graph.add_edge(2 * i, 2 * i + 2, 8)
        graph.add_edge(0, 4, 6)
        graph.add_edge(2, 6, 6)
        graph.add_edge(0, 6, 4)
        removed = graph.transitive_reduction()
        assert removed >= 2
        # the backbone survives
        for i in range(3):
            assert (2 * i + 2, 8) in graph.out_edges(2 * i)


class TestUnitigs:
    def test_simple_chain(self):
        graph = FullOverlapGraph(3, 10)
        graph.add_edge(0, 2, 6)
        graph.add_edge(2, 4, 6)
        paths = graph.unitig_paths()
        chain = [p for p in paths if len(p) == 3]
        assert chain, paths
        vertices = [v for v, _ in chain[0]]
        assert vertices == [0, 2, 4]
        overhangs = [o for _, o in chain[0]]
        assert overhangs == [4, 4, 10]

    def test_branch_breaks_unitig(self):
        graph = FullOverlapGraph(4, 10)
        graph.add_edge(0, 2, 6)
        graph.add_edge(0, 4, 6)  # branch at 0
        graph.add_edge(2, 6, 6)
        paths = graph.unitig_paths()
        # vertex 0 cannot extend through the branch
        zero_paths = [p for p in paths if p[0][0] == 0]
        assert zero_paths and len(zero_paths[0]) == 1

    def test_memory_estimate_positive(self):
        graph = FullOverlapGraph(2, 10)
        graph.add_edge(0, 2, 5)
        assert graph.nbytes_estimate() > 0

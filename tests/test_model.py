"""Analytic paper-scale model: shape assertions against the published data.

These tests pin the *qualitative* claims of the evaluation (who dominates,
what scales, where the crossovers are); absolute agreement is recorded in
EXPERIMENTS.md instead.
"""

import pytest

from repro.config import MemoryConfig
from repro.model import (Workload, model_distributed_seconds, model_memory_peaks,
                         model_partition_sort_seconds, model_phase_seconds,
                         model_sga_seconds)
from repro.model.comparison import model_lasagna_comparable_seconds
from repro.model.paper_values import (DATASET_ORDER, FIG9_GPU_ORDER_FAST_TO_SLOW,
                                      FIG10_TOTAL_HOURS, TABLE1, TABLE2_K40,
                                      TABLE3_K20, TABLE6_SGA)
from repro.seq.datasets import dataset_registry

NAME_BY_PAPER = {"H.Chr 14": "hchr14_sim", "Bumblebee": "bumblebee_sim",
                 "Parakeet": "parakeet_sim", "H.Genome": "hgenome_sim"}
QB2 = MemoryConfig.preset("qb2")
SUPERMIC = MemoryConfig.preset("supermic")


def workload(paper_name: str) -> Workload:
    return Workload.from_spec(dataset_registry()[NAME_BY_PAPER[paper_name]])


class TestWorkload:
    def test_partition_sizes(self):
        w = workload("H.Genome")
        assert w.records_per_partition == 2 * TABLE1["H.Genome"]["reads"]
        assert w.n_partition_lengths == 100 - 63
        assert w.partition_nbytes == w.records_per_partition * 20

    def test_total_tuple_volume_is_terabytes(self):
        w = workload("H.Genome")
        assert 3e12 < w.total_tuple_nbytes < 4.5e12  # ~3.7 TB

    def test_packed_store_much_smaller_than_fastq(self):
        w = workload("H.Genome")
        assert w.packed_store_nbytes < w.fastq_bytes / 10


class TestTable2Shapes:
    @pytest.mark.parametrize("dataset", DATASET_ORDER)
    def test_sort_dominates(self, dataset):
        phases = model_phase_seconds(workload(dataset), QB2, "K40")
        assert phases["sort"] > 0.4 * phases["total"]
        assert phases["sort"] > phases["map"] > phases["reduce"] * 0.3
        assert phases["compress"] < 0.01 * phases["total"]

    def test_totals_ordered_by_dataset_size(self):
        totals = [model_phase_seconds(workload(d), QB2, "K40")["total"]
                  for d in DATASET_ORDER]
        assert totals == sorted(totals)

    @pytest.mark.parametrize("dataset", DATASET_ORDER)
    def test_within_3x_of_paper(self, dataset):
        phases = model_phase_seconds(workload(dataset), QB2, "K40")
        for phase in ("map", "sort", "reduce", "total"):
            ratio = phases[phase] / TABLE2_K40[dataset][phase]
            assert 1 / 3 < ratio < 3, (phase, ratio)


class TestTable3Shapes:
    def test_extra_pass_only_for_hgenome(self):
        """64 GB slows sort only where the partition stops fitting (Table II
        vs III): H.Genome gains a merge pass, the rest do not."""
        for dataset in DATASET_ORDER:
            w = workload(dataset)
            big = model_phase_seconds(w, QB2, "K20X")["sort"]
            small = model_phase_seconds(w, SUPERMIC, "K20X")["sort"]
            ratio = small / big
            if dataset == "H.Genome":
                assert ratio > 1.3
            else:
                assert ratio < 1.1

    def test_non_sort_phases_insensitive_to_host_memory(self):
        w = workload("H.Genome")
        big = model_phase_seconds(w, QB2, "K20X")
        small = model_phase_seconds(w, SUPERMIC, "K20X")
        for phase in ("map", "reduce", "compress", "load"):
            assert small[phase] == pytest.approx(big[phase], rel=0.05)

    @pytest.mark.parametrize("dataset", DATASET_ORDER)
    def test_within_3x_of_paper(self, dataset):
        phases = model_phase_seconds(workload(dataset), SUPERMIC, "K20X")
        for phase in ("map", "sort", "reduce", "total"):
            ratio = phases[phase] / TABLE3_K20[dataset][phase]
            assert 1 / 3 < ratio < 3, (phase, ratio)


class TestMemoryPeaks:
    def test_device_constant_across_datasets(self):
        """Tables IV/V: device peaks are data-size independent."""
        peaks = [model_memory_peaks(workload(d), QB2, "K40")["device"]
                 for d in DATASET_ORDER]
        assert all(p == peaks[0] for p in peaks)

    def test_host_sort_grows_and_saturates(self):
        sort_peaks = [model_memory_peaks(workload(d), QB2, "K40")["host"]["sort"]
                      for d in DATASET_ORDER]
        assert sort_peaks == sorted(sort_peaks)
        assert sort_peaks[-1] <= QB2.host_bytes

    def test_device_fractions_match_table4(self):
        peaks = model_memory_peaks(workload("H.Genome"), QB2, "K40")["device"]
        assert peaks["map"] / 12e9 == pytest.approx(10.73e9 / 12e9, rel=0.1)
        assert peaks["sort"] / 12e9 == pytest.approx(9.02e9 / 12e9, rel=0.1)
        assert peaks["reduce"] / 12e9 == pytest.approx(4.92e9 / 12e9, rel=0.15)


class TestFig8:
    def test_host_block_dominates(self):
        """Bigger host blocks help a lot; device blocks much less (Fig. 8)."""
        host_effect = model_partition_sort_seconds(160_000_000, 20_000_000) \
            / model_partition_sort_seconds(2_560_000_000, 20_000_000)
        device_effect = model_partition_sort_seconds(640_000_000, 5_000_000) \
            / model_partition_sort_seconds(640_000_000, 40_000_000)
        assert host_effect > 2.0
        assert device_effect < 1.5
        assert host_effect > 1.5 * device_effect

    def test_flat_beyond_single_pass(self):
        """No gain past the host block that holds a whole partition (a hair
        slower, if anything: one extra in-host device merge round)."""
        single = model_partition_sort_seconds(2_560_000_000, 20_000_000)
        beyond = model_partition_sort_seconds(5_120_000_000, 20_000_000)
        assert beyond >= single
        assert beyond == pytest.approx(single, rel=0.05)

    def test_monotone_in_host_block(self):
        times = [model_partition_sort_seconds(m_h, 20_000_000)
                 for m_h in (40e6, 160e6, 640e6, 2560e6)]
        assert times == sorted(times, reverse=True)

    def test_fanout_cuts_modeled_time_when_merge_bound(self):
        """k-way merging removes disk passes, the dominant cost: the model
        must get faster with fanout whenever R > 2, and agree with the
        1 + ceil(log_k R) pass structure."""
        from repro.model.sorting import predicted_sort_passes

        pairwise = model_partition_sort_seconds(40_000_000, 20_000_000)
        kway = model_partition_sort_seconds(40_000_000, 20_000_000,
                                            merge_fanout=8)
        assert kway < pairwise
        assert predicted_sort_passes(1_000, 256) \
            > predicted_sort_passes(1_000, 256, merge_fanout=4)
        # pairwise default reproduces the paper's formula
        assert predicted_sort_passes(1_000, 2_000) == 1
        assert predicted_sort_passes(0, 2_000) == 0


class TestFig9:
    def test_gpu_ordering(self):
        times = {gpu: model_partition_sort_seconds(2_560_000_000, 20_000_000, gpu)
                 for gpu in FIG9_GPU_ORDER_FAST_TO_SLOW}
        ordered = sorted(times, key=times.get)
        assert tuple(ordered) == FIG9_GPU_ORDER_FAST_TO_SLOW

    def test_convergence_when_io_bound(self):
        """Relative GPU spread shrinks as host blocks shrink (disk dominates)."""
        def spread(m_h):
            times = [model_partition_sort_seconds(m_h, 20_000_000, gpu)
                     for gpu in FIG9_GPU_ORDER_FAST_TO_SLOW]
            return (max(times) - min(times)) / min(times)

        assert spread(40_000_000) < spread(2_560_000_000) / 2


class TestTable6:
    def test_lasagna_wins_everywhere(self):
        for dataset in DATASET_ORDER:
            w = workload(dataset)
            for memory, device in ((QB2, "K40"), (SUPERMIC, "K20X")):
                sga = model_sga_seconds(w, memory.host_bytes)
                ours = model_lasagna_comparable_seconds(w, memory, device)
                if sga is not None:
                    assert sga / ours > 1.2, dataset

    def test_oom_pattern(self):
        for dataset in DATASET_ORDER:
            sga64 = model_sga_seconds(workload(dataset), SUPERMIC.host_bytes)
            expected_oom = TABLE6_SGA[dataset]["sga_64"] is None
            assert (sga64 is None) is expected_oom

    def test_sga_model_tracks_published_times(self):
        for dataset in DATASET_ORDER:
            published = TABLE6_SGA[dataset]["sga_128"]
            modeled = model_sga_seconds(workload(dataset), QB2.host_bytes)
            assert 1 / 2 < modeled / published < 2, dataset


class TestFig10:
    def test_monotone_scaling_and_headline(self):
        w = workload("H.Genome")
        totals = {n: model_distributed_seconds(w, SUPERMIC, "K20X", n)["total"]
                  for n in (1, 2, 4, 8)}
        assert totals[8] < totals[4] < totals[2]
        # the paper's headline: "a little over 5 hours" at 8 nodes
        assert totals[8] / 3600 == pytest.approx(FIG10_TOTAL_HOURS[8], rel=0.35)

    def test_shuffle_overhead_structure(self):
        w = workload("H.Genome")
        one = model_distributed_seconds(w, SUPERMIC, "K20X", 1)
        two = model_distributed_seconds(w, SUPERMIC, "K20X", 2)
        assert one["shuffle"] == 0.0
        assert two["shuffle"] > 0.0

    def test_reduce_saturates(self):
        """The t_o·p/n + t_g·p law: gains flatten at high node counts."""
        w = workload("H.Genome")
        reduce_times = [model_distributed_seconds(w, SUPERMIC, "K20X", n)["reduce"]
                        for n in (1, 2, 4, 8, 16, 64)]
        assert reduce_times == sorted(reduce_times, reverse=True)
        floor = model_distributed_seconds(w, SUPERMIC, "K20X", 4096)["reduce"]
        assert reduce_times[-1] < 2.5 * floor


class TestPaperValuesConsistency:
    @pytest.mark.parametrize("table", [TABLE2_K40, TABLE3_K20])
    def test_totals_equal_phase_sums(self, table):
        for dataset, phases in table.items():
            total = sum(v for k, v in phases.items() if k != "total")
            assert total == pytest.approx(phases["total"], abs=2), dataset

    def test_speedup_range_matches_cells(self):
        ratios = []
        for dataset, row in TABLE6_SGA.items():
            for memory in ("64", "128"):
                sga, ours = row[f"sga_{memory}"], row[f"lasagna_{memory}"]
                if sga is not None:
                    ratios.append(sga / ours)
        assert min(ratios) == pytest.approx(1.89, abs=0.01)
        assert max(ratios) == pytest.approx(3.05, abs=0.01)

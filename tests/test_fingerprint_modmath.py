"""Modular arithmetic helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.fingerprint.modmath import (MODULUS_PRIMES, RADIX_PRIMES, mulmod,
                                       place_values, submod)


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    for p in range(2, int(n**0.5) + 1):
        if n % p == 0:
            return False
    return True


class TestParameterCatalog:
    def test_moduli_are_prime_and_31bit(self):
        for p in MODULUS_PRIMES:
            assert _is_prime(p)
            assert 2**30 < p < 2**31

    def test_radixes_are_small_primes_above_alphabet(self):
        for r in RADIX_PRIMES:
            assert _is_prime(r)
            assert 4 < r < 64


class TestPlaceValues:
    def test_definition(self):
        m = place_values(5, 13, 6)
        assert m.tolist() == [1, 5, 12, 8, 1, 5]  # 5^i mod 13

    def test_validation(self):
        with pytest.raises(ConfigError):
            place_values(3, 13, 4)  # radix <= alphabet
        with pytest.raises(ConfigError):
            place_values(5, 2**31 + 11, 4)  # prime too large
        with pytest.raises(ConfigError):
            place_values(5, 13, 0)

    @given(st.integers(1, 150))
    def test_matches_pow(self, length):
        prime = MODULUS_PRIMES[0]
        m = place_values(7, prime, length)
        for i in (0, length // 2, length - 1):
            assert int(m[i]) == pow(7, i, prime)


class TestModOps:
    @given(st.integers(0, 2**31 - 2), st.integers(0, 2**31 - 2))
    def test_mulmod_no_overflow(self, a, b):
        prime = MODULUS_PRIMES[1]
        a %= prime
        b %= prime
        assert int(mulmod(np.uint64(a), np.uint64(b), prime)) == (a * b) % prime

    @given(st.integers(0, 2**31 - 2), st.integers(0, 2**31 - 2))
    def test_submod(self, a, b):
        prime = MODULUS_PRIMES[2]
        a %= prime
        b %= prime
        assert int(submod(np.uint64(a), np.uint64(b), prime)) == (a - b) % prime

    def test_vectorized(self):
        prime = 13
        out = mulmod(np.array([3, 5], dtype=np.uint64), 7, prime)
        assert out.tolist() == [21 % 13, 35 % 13]


class TestPerSchemeCache:
    """place_values memoization lives on the HashSpec, not the process.

    The old process-global ``lru_cache`` grew without bound across
    schemes and started cold in forked workers; the per-spec cache is
    owned (and collected) with the scheme that uses it.
    """

    def test_two_schemes_do_not_collide(self):
        from repro.fingerprint.rabin_karp import HashSpec

        a = HashSpec(RADIX_PRIMES[0], MODULUS_PRIMES[0])
        b = HashSpec(RADIX_PRIMES[1], MODULUS_PRIMES[1])
        va, vb = a.place_values(40), b.place_values(40)
        for i in (0, 17, 39):
            assert int(va[i]) == pow(a.radix, i, a.prime)
            assert int(vb[i]) == pow(b.radix, i, b.prime)
        # Interleaved reuse must hit each spec's own cache entry.
        assert a.place_values(40) is va
        assert b.place_values(40) is vb
        assert not np.array_equal(va, vb)

    def test_cache_is_per_instance_state(self):
        from repro.fingerprint.rabin_karp import HashSpec

        a = HashSpec(RADIX_PRIMES[0], MODULUS_PRIMES[0])
        b = HashSpec(RADIX_PRIMES[0], MODULUS_PRIMES[0])
        assert a == b  # the cache is excluded from dataclass equality
        a.place_values(16)
        assert 16 in a._place_cache and 16 not in b._place_cache

    def test_module_function_is_uncached(self):
        # The pure computation has no memo: two calls return fresh
        # (frozen) arrays, so no global table can grow without bound.
        one = place_values(RADIX_PRIMES[0], MODULUS_PRIMES[0], 12)
        two = place_values(RADIX_PRIMES[0], MODULUS_PRIMES[0], 12)
        assert one is not two
        assert not one.flags.writeable

"""Chaos fault injection and crash recovery.

The crash loop kills ``Assembler.assemble(resume=True)`` at dozens of
injected points across every phase and requires the resumed run to converge
to the byte-identical golden result with no scratch or ledger residue. Set
``REPRO_CHAOS_SEEDS=11,23,47`` (as CI's chaos job does) to sweep several
fault-kind rotations; a failed seed reproduces locally with the same value.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

import numpy as np
import pytest

from repro.config import AssemblyConfig
from repro.core.checkpoint import STATE_FILE, file_digest
from repro.core.pipeline import PHASES, Assembler
from repro.distributed.cluster import DistributedAssembler
from repro.errors import (ConfigError, DistributedProtocolError, FaultInjected,
                          SortContractError, StreamProtocolError)
from repro.extmem import PartitionStore, RunReader, RunWriter
from repro.extmem.merge import merge_streams_k
from repro.extmem.records import kv_dtype, make_records
from repro.faults import (BITFLIP, CRASH, LEDGER, PHASE, READ, TORN, WRITE,
                          CrashLoop, Fault, FaultPlan, inject, result_digest,
                          scan_residue)
from repro.seq.datasets import tiny_dataset

#: Seeds the crash loop sweeps; CI's chaos job overrides with 3 fixed seeds.
CHAOS_SEEDS = [int(s) for s in
               os.environ.get("REPRO_CHAOS_SEEDS", "11").split(",")]

MIN_OVERLAP = 24


@pytest.fixture(scope="module")
def chaos_data(tmp_path_factory):
    """A small dataset sized so a ~30-run crash loop stays fast."""
    root = tmp_path_factory.mktemp("chaos-data")
    md, batch = tiny_dataset(root, genome_length=600, read_length=36,
                             coverage=8.0, min_overlap=MIN_OVERLAP, seed=7)
    return md, batch


@pytest.fixture()
def config() -> AssemblyConfig:
    return AssemblyConfig(min_overlap=MIN_OVERLAP, seed=7)


# -- FaultPlan unit behaviour --------------------------------------------------


class TestFaultPlan:
    def test_seeded_plans_are_deterministic(self):
        first, second = FaultPlan.seeded(42, 100), FaultPlan.seeded(42, 100)
        assert first.pending == second.pending
        assert first.pending != FaultPlan.seeded(43, 100).pending

    def test_unknown_kind_and_site_rejected(self):
        with pytest.raises(ConfigError):
            Fault("meteor-strike")
        with pytest.raises(ConfigError):
            Fault(CRASH, site="teapot")

    def test_once_fault_disarms_after_firing(self, tmp_path):
        plan = FaultPlan([Fault(CRASH, site=WRITE)])
        dtype = kv_dtype(1)
        records = make_records(np.array([1], dtype=np.uint64),
                               np.array([0], dtype=np.uint32))
        with inject(plan):
            with pytest.raises(FaultInjected):
                with RunWriter(tmp_path / "a.run", dtype) as writer:
                    writer.append(records)
            plan.clear_crash()
            assert plan.pending == ()
            with RunWriter(tmp_path / "b.run", dtype) as writer:
                writer.append(records)  # disarmed: succeeds
        assert plan.events[0].kind == CRASH

    def test_inject_is_not_reentrant(self):
        with inject(FaultPlan()):
            with pytest.raises(ConfigError):
                with inject(FaultPlan()):
                    pass

    def test_probe_records_trace_and_meter(self, chaos_data, config, tmp_path):
        md, _ = chaos_data
        plan = FaultPlan()
        with inject(plan):
            result = Assembler(config).assemble(md.store_path,
                                                workdir=tmp_path / "w",
                                                resume=True)
        assert plan.ops_seen == len(plan.trace) > 25
        assert {t.site for t in plan.trace} >= {WRITE, READ, LEDGER, PHASE}
        assert {t.phase for t in plan.trace} - {None} == set(PHASES)
        # Fault ops surface as per-phase telemetry counters.
        assert plan.meter.counters()["fault_ops"] == plan.ops_seen
        assert all(result.telemetry[p].counters.get("fault_ops", 0) > 0
                   for p in PHASES)


# -- the tentpole: the crash loop ---------------------------------------------


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_crash_loop_recovers_at_every_point(chaos_data, config, tmp_path, seed):
    md, _ = chaos_data
    loop = CrashLoop(config, md.store_path, tmp_path, points_per_phase=6,
                     seed=seed)
    report = loop.run()
    assert report.points_tested >= 25
    assert report.phases_covered == set(PHASES)
    assert all(outcome.crashed for outcome in report.outcomes)
    report.require_clean()  # byte-identical digests, ledger, zero residue


def test_crash_loop_rotates_fault_kinds(chaos_data, config, tmp_path):
    md, _ = chaos_data
    loop = CrashLoop(config, md.store_path, tmp_path, points_per_phase=6,
                     seed=CHAOS_SEEDS[0])
    kinds = {kind for _, kind in loop.select_points(loop.probe())}
    assert len(kinds) >= 3


# -- satellite: resume at every phase boundary --------------------------------


@pytest.mark.parametrize("phase", PHASES)
def test_interrupt_after_each_phase_then_resume(chaos_data, config, tmp_path,
                                                phase):
    md, _ = chaos_data
    golden = Assembler(config).assemble(md.store_path,
                                        workdir=tmp_path / "golden", resume=True)
    workdir = tmp_path / "interrupted"
    plan = FaultPlan([Fault(CRASH, site=PHASE, match=phase)])
    with inject(plan):
        with pytest.raises(FaultInjected):
            Assembler(config).assemble(md.store_path, workdir=workdir,
                                       resume=True)
    resumed = Assembler(config).assemble(md.store_path, workdir=workdir,
                                         resume=True)
    assert result_digest(resumed) == result_digest(golden)
    assert scan_residue(workdir) == []


# -- satellite: checkpoint staleness on sort-shape changes ---------------------


def test_fanout_change_invalidates_resume_state(chaos_data, tmp_path):
    md, _ = chaos_data
    workdir = tmp_path / "w"
    base = AssemblyConfig(min_overlap=MIN_OVERLAP, seed=7, merge_fanout=2)
    Assembler(base).assemble(md.store_path, workdir=workdir, resume=True)

    wider = AssemblyConfig(min_overlap=MIN_OVERLAP, seed=7, merge_fanout=4)
    second = Assembler(wider).assemble(md.store_path, workdir=workdir,
                                       resume=True)
    # The fingerprint change must force a sort-phase rerun, not a skip.
    assert second.telemetry["sort"].counters.get("disk_read_bytes", 0) > 0
    assert all(r.fanout == 4 for r in second.sort_report.reports.values())

    # A genuine resume under the new fanout restores all four report fields
    # (a 3-field ledger would silently resurrect the default fanout of 2).
    third = Assembler(wider).assemble(md.store_path, workdir=workdir,
                                      resume=True)
    assert third.sort_report.reports == second.sort_report.reports
    assert result_digest(third) == result_digest(second)


# -- satellite: stream protocol errors ----------------------------------------


def test_run_writer_append_after_close_is_typed(tmp_path):
    dtype = kv_dtype(1)
    records = make_records(np.array([1], dtype=np.uint64),
                           np.array([0], dtype=np.uint32))
    writer = RunWriter(tmp_path / "x.run", dtype)
    writer.append(records)
    writer.close()
    with pytest.raises(StreamProtocolError, match="append after close"):
        writer.append(records)


def test_run_reader_read_after_close_is_typed(tmp_path):
    dtype = kv_dtype(1)
    with RunWriter(tmp_path / "x.run", dtype) as writer:
        writer.append(make_records(np.array([1], dtype=np.uint64),
                                   np.array([0], dtype=np.uint32)))
    reader = RunReader(tmp_path / "x.run", dtype)
    reader.close()
    with pytest.raises(StreamProtocolError, match="read after close"):
        reader.read(1)


def test_partition_store_append_after_finalize_is_typed(tmp_path):
    dtype = kv_dtype(1)
    store = PartitionStore(tmp_path, dtype)
    records = make_records(np.array([1], dtype=np.uint64),
                           np.array([0], dtype=np.uint32))
    store.append("S", 24, records)
    store.finalize()
    with pytest.raises(StreamProtocolError, match="after finalize"):
        store.append("S", 24, records)


# -- corruption detection ------------------------------------------------------


def test_merge_rejects_unsorted_input(tmp_path):
    dtype = kv_dtype(1)
    sorted_keys = np.array([1, 2, 3], dtype=np.uint64)
    broken_keys = np.array([5, 4, 9], dtype=np.uint64)
    vertices = np.zeros(3, dtype=np.uint32)
    for name, keys in (("good.run", sorted_keys), ("bad.run", broken_keys)):
        with RunWriter(tmp_path / name, dtype) as writer:
            writer.append(make_records(keys, vertices))
    out = []
    with RunReader(tmp_path / "good.run", dtype) as a, \
            RunReader(tmp_path / "bad.run", dtype) as b:
        with pytest.raises(SortContractError):
            merge_streams_k([a, b], out.append, window_records=8,
                            merge_fn=lambda x, y: np.sort(
                                np.concatenate([x, y]), order="key"))


def test_corrupted_sorted_partition_detected_on_resume(chaos_data, config,
                                                       tmp_path):
    md, _ = chaos_data
    workdir = tmp_path / "w"
    golden = Assembler(config).assemble(md.store_path, workdir=workdir,
                                        resume=True)
    victim = next(iter(sorted((workdir / "partitions").glob("S_*.sorted.run"))))
    recorded = file_digest(victim)
    raw = bytearray(victim.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    victim.write_bytes(bytes(raw))
    assert file_digest(victim) != recorded
    # Resume must notice the at-rest corruption via the artifact digest,
    # rebuild from the packed store, and still converge to the golden run.
    resumed = Assembler(config).assemble(md.store_path, workdir=workdir,
                                         resume=True)
    assert result_digest(resumed) == result_digest(golden)


def test_torn_ledger_write_recovers(chaos_data, config, tmp_path):
    md, _ = chaos_data
    golden = Assembler(config).assemble(md.store_path,
                                        workdir=tmp_path / "golden", resume=True)
    workdir = tmp_path / "w"
    plan = FaultPlan([Fault(TORN, site=LEDGER, offset=10)])
    with inject(plan):
        with pytest.raises(FaultInjected):
            Assembler(config).assemble(md.store_path, workdir=workdir,
                                       resume=True)
    state_raw = (workdir / STATE_FILE).read_bytes()
    with pytest.raises(json.JSONDecodeError):
        json.loads(state_raw)  # genuinely torn on disk
    resumed = Assembler(config).assemble(md.store_path, workdir=workdir,
                                         resume=True)
    assert result_digest(resumed) == result_digest(golden)


# -- satellite: distributed reduce token hand-off ------------------------------


class TestDistributedToken:
    N_NODES = 3

    def test_node_failure_retries_without_losing_token(self, chaos_data,
                                                       config):
        md, _ = chaos_data
        clean = DistributedAssembler(config, self.N_NODES).assemble(md.store_path)
        assert all(entry["ok"] for entry in clean.token_trace)

        plan = FaultPlan([Fault(CRASH, site=READ, match="*.sorted.run")])
        with inject(plan):
            faulted = DistributedAssembler(config, self.N_NODES).assemble(
                md.store_path)
        failures = [e for e in faulted.token_trace if not e["ok"]]
        assert len(failures) == 1
        # The failed partition was replayed on the same owner...
        replayed = [e for e in faulted.token_trace
                    if e["length"] == failures[0]["length"] and e["ok"]]
        assert len(replayed) == 1 and replayed[0]["attempt"] == 1
        # ...and the token was neither lost nor duplicated: every partition
        # processed exactly once, edge set and contigs identical.
        ok_lengths = [e["length"] for e in faulted.token_trace if e["ok"]]
        assert sorted(ok_lengths) == sorted(set(ok_lengths))
        assert faulted.edges == clean.edges
        assert np.array_equal(faulted.contigs.flat_codes,
                              clean.contigs.flat_codes)

    def test_persistent_node_failure_raises_typed_error(self, chaos_data,
                                                        config):
        md, _ = chaos_data
        # With degraded mode off, exhausting every owner of a partition is
        # still the historical fail-stop protocol error.
        strict = replace(config, allow_degraded=False)
        plan = FaultPlan([Fault(CRASH, site=READ, match="*.sorted.run",
                                once=False)])
        with inject(plan):
            with pytest.raises(DistributedProtocolError, match="token lost"):
                DistributedAssembler(strict, self.N_NODES).assemble(
                    md.store_path)


class TestArmedPlanPausesStreamFastPaths:
    """A plan arming mid-stream must pause the pooled I/O fast paths.

    RunWriter coalesces sub-256KB appends in a tail buffer and RunReader
    uses ``np.fromfile`` — both bypass the fault sites. The regression:
    a plan armed *after* a stream opened (with a tail already buffered)
    silently missed its scheduled faults, and crash unwinds re-delivered
    the buffered prefix, breaking replay byte-identity.
    """

    def test_buffered_tail_is_one_injectable_write(self, tmp_path):
        dtype = kv_dtype(1)
        records = make_records(np.arange(10, dtype=np.uint64),
                               np.zeros(10, dtype=np.uint32))
        path = tmp_path / "x.run"
        writer = RunWriter(path, dtype)
        writer.append(records)  # coalesced: nothing OS-visible yet
        assert path.stat().st_size == 0
        plan = FaultPlan([Fault(TORN, site=WRITE, offset=4)])
        with inject(plan):
            with pytest.raises(FaultInjected):
                writer.append(records)
        # The tear landed on the *buffered tail*, proving the tail reached
        # the fault site as one ordinary write the moment the plan armed.
        assert [e.kind for e in plan.events] == [TORN]
        writer.close()
        # ...and the unwind (close also drains) did not re-deliver the
        # cleared tail: exactly the torn prefix reached disk.
        assert path.stat().st_size == 4

    def test_armed_plan_routes_reads_through_filter(self, tmp_path):
        dtype = kv_dtype(1)
        path = tmp_path / "x.run"
        keys = np.arange(20, dtype=np.uint64)
        with RunWriter(path, dtype) as writer:
            writer.append(make_records(keys, np.zeros(20, dtype=np.uint32)))
        with RunReader(path, dtype) as reader:
            first = reader.read(5)  # fast path: no plan armed
            assert np.array_equal(first["key"], keys[:5])
            plan = FaultPlan([Fault(BITFLIP, site=READ, offset=3)])
            with inject(plan):
                flipped = reader.read(5)
            # The scheduled corruption fired, so the mid-run arming was
            # honored (np.fromfile would have skipped filter_read).
            assert [e.kind for e in plan.events] == [BITFLIP]
            assert not np.array_equal(flipped["key"], keys[5:10])
            rest = reader.read_all()  # fast path restored after disarm
            assert np.array_equal(rest["key"], keys[10:])

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_seeded_chaos_through_coalesced_streams(self, chaos_data, config,
                                                    tmp_path, seed):
        """Regression seed: the crash loop's write/read faults must fire and
        recover byte-identically even though the pipeline's hot paths
        coalesce writes and fast-path reads when unfaulted."""
        md, _ = chaos_data
        golden = Assembler(config).assemble(md.store_path,
                                            workdir=tmp_path / "golden",
                                            resume=True)
        workdir = tmp_path / "w"
        plan = FaultPlan.seeded(seed + 101, 40)
        with inject(plan):
            try:
                Assembler(config).assemble(md.store_path, workdir=workdir,
                                           resume=True)
            except FaultInjected:
                plan.clear_crash()
            resumed = Assembler(config).assemble(md.store_path,
                                                 workdir=workdir, resume=True)
        assert result_digest(resumed) == result_digest(golden)
        assert scan_residue(workdir) == []


class TestArmedPlanForcesSerial:
    """An armed fault plan must force serial execution on EVERY backend.

    Fault injection sites key replay determinism off operation order, so
    the forced-serial guard cannot care which backend the executor was
    configured with — threads and processes alike must run inline while
    a plan is armed.
    """

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_armed_plan_forces_inline_execution(self, backend):
        import os

        from repro.parallel import PipelineExecutor

        executor = PipelineExecutor(4, backend=backend)
        try:
            assert executor.parallel
            with inject(FaultPlan(seed=1)):
                assert not executor.parallel
                assert not executor.process_parallel
                results = list(executor.map_tasks(
                    "repro.parallel.process_backend:_probe_task",
                    ({"i": i} for i in range(3))))
                assert {r["pid"] for r in results} == {os.getpid()}
            assert executor.parallel  # restored once the plan is disarmed
        finally:
            executor.shutdown()

    def test_plan_armed_at_construction_skips_worker_fork(self):
        from repro.parallel import PipelineExecutor

        with inject(FaultPlan(seed=1)):
            executor = PipelineExecutor(4, backend="processes")
            try:
                assert executor._processes is None
            finally:
                executor.shutdown()

"""Greedy string graph: exact equivalence with sequential greedy + invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import MemoryPool
from repro.errors import ConfigError, GraphInvariantError, HostMemoryError
from repro.graph import GreedyStringGraph, complement_vertices


def sequential_greedy(n_reads, read_length, candidate_batches):
    """Straight-line reference: one candidate at a time, paper rules."""
    out_edges = {}
    has_out = set()
    for sources, targets, length in candidate_batches:
        for u, v in zip(sources, targets):
            u, v = int(u), int(v)
            if (u >> 1) == (v >> 1):
                continue
            if u in has_out or (v ^ 1) in has_out:
                continue
            has_out.add(u)
            has_out.add(v ^ 1)
            out_edges[u] = (v, length)
            out_edges[v ^ 1] = (u ^ 1, length)
    return out_edges


candidate_batches_strategy = st.lists(
    st.tuples(
        st.lists(st.integers(0, 59), min_size=1, max_size=40),
        st.integers(5, 19),
    ),
    min_size=1, max_size=6,
)


class TestGreedyEquivalence:
    @given(candidate_batches_strategy, st.integers(0, 2**32 - 1))
    @settings(max_examples=80)
    def test_matches_sequential_reference(self, shape, seed):
        rng = np.random.default_rng(seed)
        n_reads, read_length = 30, 20
        graph = GreedyStringGraph(n_reads, read_length)
        batches = []
        lengths_used = sorted({length for _, length in shape}, reverse=True)
        for (source_pool, _), length in zip(shape, lengths_used):
            m = len(source_pool)
            sources = np.array(source_pool, dtype=np.int64)
            targets = rng.integers(0, 2 * n_reads, m)
            batches.append((sources, targets, length))
        for sources, targets, length in batches:
            graph.add_candidates(sources, targets, length)
        reference = sequential_greedy(n_reads, read_length, batches)
        graph.check_invariants()
        edge_sources, edge_targets, overlaps = graph.edge_list()
        got = {int(u): (int(v), int(l))
               for u, v, l in zip(edge_sources, edge_targets, overlaps)}
        assert got == reference

    def test_accepted_count_returned(self):
        graph = GreedyStringGraph(4, 10)
        accepted = graph.add_candidates(np.array([0, 0, 2]),
                                        np.array([2, 4, 4]), 5)
        # 0->2 accepted; 0->4 rejected (0 already has an out-edge);
        # 2->4 accepted (2 and 5 both still free).
        assert accepted == 2
        assert graph.candidates_seen == 3


class TestRules:
    def test_same_read_pairs_never_edge(self):
        graph = GreedyStringGraph(2, 10)
        graph.add_candidates(np.array([0, 1]), np.array([1, 0]), 4)
        assert graph.n_edges == 0  # 0,1 are the same read's orientations

    def test_complement_twin_inserted(self):
        graph = GreedyStringGraph(3, 10)
        graph.add_candidates(np.array([0]), np.array([2]), 6)
        assert graph.out_vertex(0) == 2
        assert graph.out_vertex(3) == 1  # (v', u') = (2^1, 0^1)
        assert graph.n_edges == 2

    def test_longer_overlap_wins(self):
        graph = GreedyStringGraph(3, 10)
        graph.add_candidates(np.array([0]), np.array([2]), 8)
        graph.add_candidates(np.array([0]), np.array([4]), 5)
        assert graph.out_vertex(0) == 2
        assert graph.overlap[0] == 8

    def test_in_degree_capped_via_complement_rule(self):
        graph = GreedyStringGraph(4, 10)
        graph.add_candidates(np.array([0, 2]), np.array([4, 4]), 5)
        # Second candidate hits v' = 5 already having an out-edge.
        assert graph.n_edges == 2
        graph.check_invariants()

    def test_length_validation(self):
        graph = GreedyStringGraph(2, 10)
        with pytest.raises(ConfigError):
            graph.add_candidates(np.array([0]), np.array([2]), 10)  # == L
        with pytest.raises(ConfigError):
            graph.add_candidates(np.array([0]), np.array([2]), 0)

    def test_vertex_range_validation(self):
        graph = GreedyStringGraph(2, 10)
        with pytest.raises(ConfigError):
            graph.add_candidates(np.array([0]), np.array([7]), 5)

    def test_overhangs(self):
        graph = GreedyStringGraph(3, 10)
        graph.add_candidates(np.array([0]), np.array([2]), 6)
        overhangs = graph.overhangs()
        assert overhangs[0] == 4   # 10 - 6
        assert overhangs[2] == 10  # no out-edge


class TestAccounting:
    def test_host_pool_charged_and_released(self):
        pool = MemoryPool("host", 10_000_000, HostMemoryError)
        graph = GreedyStringGraph(1000, 50, pool)
        assert pool.used_bytes == graph.nbytes
        graph.release()
        assert pool.used_bytes == 0

    def test_complement_vertices(self):
        assert complement_vertices(4) == 5
        assert complement_vertices(np.array([0, 3])).tolist() == [1, 2]

    def test_invariant_checker_catches_tampering(self):
        graph = GreedyStringGraph(3, 10)
        graph.add_candidates(np.array([0]), np.array([2]), 6)
        graph.target[3] = -1  # break complement symmetry
        with pytest.raises(GraphInvariantError):
            graph.check_invariants()

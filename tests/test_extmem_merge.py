"""Algorithm 1: window-equalized merging."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.extmem import RunReader, RunWriter, merge_in_memory, merge_runs
from repro.extmem.records import kv_dtype, make_records


def _run(keys) -> np.ndarray:
    keys = np.sort(np.asarray(keys, dtype=np.uint64))
    return make_records(keys, np.arange(keys.shape[0], dtype=np.uint32))


def _host_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    from repro.device.kernels import merge_sorted_records

    _, (merged,) = merge_sorted_records(a["key"], (a,), b["key"], (b,))
    return merged


sorted_keys = st.lists(st.integers(0, 50), min_size=0, max_size=120)


class TestMergeInMemory:
    @given(sorted_keys, sorted_keys, st.integers(1, 40))
    @settings(max_examples=80)
    def test_multiset_and_order(self, a_keys, b_keys, window):
        a, b = _run(a_keys), _run(b_keys)
        merged = merge_in_memory(a, b, window_records=window, merge_fn=_host_merge)
        expected = np.sort(np.concatenate([a["key"], b["key"]]))
        assert np.array_equal(merged["key"], expected)
        # values form the same multiset (no record lost or duplicated)
        assert sorted(merged["val"].tolist()) \
            == sorted(a["val"].tolist() + b["val"].tolist())

    def test_window_one_still_correct(self):
        """Degenerate windows force the equalization path constantly."""
        a, b = _run([1, 1, 1, 2, 5]), _run([1, 3, 3, 9])
        merged = merge_in_memory(a, b, window_records=1, merge_fn=_host_merge)
        assert merged["key"].tolist() == [1, 1, 1, 1, 2, 3, 3, 5, 9]

    def test_pass_through_fast_path(self):
        """Totally ordered windows are copied without calling merge_fn."""
        calls = []

        def spy(a, b):
            calls.append((a.shape[0], b.shape[0]))
            return _host_merge(a, b)

        a, b = _run([1, 2, 3, 4]), _run([10, 11, 12, 13])
        merged = merge_in_memory(a, b, window_records=4, merge_fn=spy)
        assert merged["key"].tolist() == [1, 2, 3, 4, 10, 11, 12, 13]
        assert calls == []

    def test_window_validation(self):
        with pytest.raises(ConfigError):
            merge_in_memory(_run([1]), _run([2]), window_records=0,
                            merge_fn=_host_merge)

    def test_empty_inputs(self):
        merged = merge_in_memory(_run([]), _run([]), window_records=4,
                                 merge_fn=_host_merge)
        assert merged.shape[0] == 0
        one_sided = merge_in_memory(_run([1, 2]), _run([]), window_records=4,
                                    merge_fn=_host_merge)
        assert one_sided["key"].tolist() == [1, 2]


class TestMergeRuns:
    def test_on_disk(self, tmp_path, rng):
        dtype = kv_dtype(1)
        a = _run(rng.integers(0, 1000, 500))
        b = _run(rng.integers(0, 1000, 300))
        for name, records in (("a", a), ("b", b)):
            with RunWriter(tmp_path / name, dtype) as writer:
                writer.append(records)
        with RunReader(tmp_path / "a", dtype) as reader_a, \
                RunReader(tmp_path / "b", dtype) as reader_b, \
                RunWriter(tmp_path / "c", dtype) as writer:
            emitted = merge_runs(reader_a, reader_b, writer,
                                 window_records=64, merge_fn=_host_merge)
        assert emitted == 800
        with RunReader(tmp_path / "c", dtype) as reader:
            merged = reader.read_all()
        assert np.array_equal(merged["key"],
                              np.sort(np.concatenate([a["key"], b["key"]])))

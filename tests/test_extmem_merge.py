"""Algorithm 1: window-equalized merging (pairwise and fanout-k)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.extmem import (RunReader, RunWriter, merge_in_memory,
                          merge_in_memory_k, merge_runs, merge_runs_k,
                          merge_streams_k)
from repro.extmem.merge import ArraySource
from repro.extmem.records import kv_dtype, make_records


def _run(keys) -> np.ndarray:
    keys = np.sort(np.asarray(keys, dtype=np.uint64))
    return make_records(keys, np.arange(keys.shape[0], dtype=np.uint32))


def _host_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    from repro.device.kernels import merge_sorted_records

    _, (merged,) = merge_sorted_records(a["key"], (a,), b["key"], (b,))
    return merged


sorted_keys = st.lists(st.integers(0, 50), min_size=0, max_size=120)


class TestMergeInMemory:
    @given(sorted_keys, sorted_keys, st.integers(1, 40))
    @settings(max_examples=80)
    def test_multiset_and_order(self, a_keys, b_keys, window):
        a, b = _run(a_keys), _run(b_keys)
        merged = merge_in_memory(a, b, window_records=window, merge_fn=_host_merge)
        expected = np.sort(np.concatenate([a["key"], b["key"]]))
        assert np.array_equal(merged["key"], expected)
        # values form the same multiset (no record lost or duplicated)
        assert sorted(merged["val"].tolist()) \
            == sorted(a["val"].tolist() + b["val"].tolist())

    def test_window_one_still_correct(self):
        """Degenerate windows force the equalization path constantly."""
        a, b = _run([1, 1, 1, 2, 5]), _run([1, 3, 3, 9])
        merged = merge_in_memory(a, b, window_records=1, merge_fn=_host_merge)
        assert merged["key"].tolist() == [1, 1, 1, 1, 2, 3, 3, 5, 9]

    def test_pass_through_fast_path(self):
        """Totally ordered windows are copied without calling merge_fn."""
        calls = []

        def spy(a, b):
            calls.append((a.shape[0], b.shape[0]))
            return _host_merge(a, b)

        a, b = _run([1, 2, 3, 4]), _run([10, 11, 12, 13])
        merged = merge_in_memory(a, b, window_records=4, merge_fn=spy)
        assert merged["key"].tolist() == [1, 2, 3, 4, 10, 11, 12, 13]
        assert calls == []

    def test_window_validation(self):
        with pytest.raises(ConfigError):
            merge_in_memory(_run([1]), _run([2]), window_records=0,
                            merge_fn=_host_merge)

    def test_empty_inputs(self):
        merged = merge_in_memory(_run([]), _run([]), window_records=4,
                                 merge_fn=_host_merge)
        assert merged.shape[0] == 0
        one_sided = merge_in_memory(_run([1, 2]), _run([]), window_records=4,
                                    merge_fn=_host_merge)
        assert one_sided["key"].tolist() == [1, 2]


class TestMergeStreamsK:
    @given(st.lists(sorted_keys, min_size=1, max_size=6), st.integers(1, 40))
    @settings(max_examples=80)
    def test_multiset_and_order(self, runs_keys, window):
        runs = [_run(keys) for keys in runs_keys]
        merged = merge_in_memory_k(runs, window_records=window,
                                   merge_fn=_host_merge)
        expected = np.sort(np.concatenate([r["key"] for r in runs]))
        assert np.array_equal(merged["key"], expected)
        assert sorted(merged["val"].tolist()) \
            == sorted(v for r in runs for v in r["val"].tolist())

    @given(sorted_keys, sorted_keys, st.integers(1, 40))
    @settings(max_examples=40)
    def test_k2_matches_pairwise(self, a_keys, b_keys, window):
        a, b = _run(a_keys), _run(b_keys)
        pairwise = merge_in_memory(a, b, window_records=window,
                                   merge_fn=_host_merge)
        kway = merge_in_memory_k([a, b], window_records=window,
                                 merge_fn=_host_merge)
        assert np.array_equal(pairwise["key"], kway["key"])

    def test_pass_through_fast_path(self):
        """Totally ordered windows are copied without calling any executor."""
        calls = []

        def spy(parts):
            calls.append([p.shape[0] for p in parts])
            return _host_merge(parts[0], parts[1])

        runs = [_run([1, 2]), _run([10, 11]), _run([20, 21])]
        merged = merge_in_memory_k(runs, window_records=4, merge_fn_k=spy)
        assert merged["key"].tolist() == [1, 2, 10, 11, 20, 21]
        assert calls == []

    def test_merge_fn_k_receives_equalized_windows(self):
        """Interleaved runs route through the k-ary executor, bounded by
        k windows, and every handed part stops at the smallest tail key."""
        seen = []

        def gathered(parts):
            seen.append(len(parts))
            merged = parts[0]
            for part in parts[1:]:
                merged = _host_merge(merged, part)
            return merged

        runs = [_run([1, 4, 7]), _run([2, 5, 8]), _run([3, 6, 9])]
        merged = merge_in_memory_k(runs, window_records=2, merge_fn_k=gathered)
        assert merged["key"].tolist() == list(range(1, 10))
        assert seen and all(n <= 3 for n in seen)

    def test_single_and_empty_sources(self):
        only = merge_in_memory_k([_run([3, 1])], window_records=4,
                                 merge_fn=_host_merge)
        assert only["key"].tolist() == [1, 3]
        padded = merge_in_memory_k([_run([]), _run([2, 4]), _run([])],
                                   window_records=4, merge_fn=_host_merge)
        assert padded["key"].tolist() == [2, 4]
        with pytest.raises(ConfigError):
            merge_in_memory_k([], window_records=4, merge_fn=_host_merge)

    def test_requires_an_executor(self):
        with pytest.raises(ConfigError, match="merge_fn"):
            merge_streams_k([ArraySource(_run([1]))], lambda _: None,
                            window_records=4)

    def test_no_sources_emits_nothing(self):
        assert merge_streams_k([], lambda _: None, window_records=4,
                               merge_fn=_host_merge) == 0


class TestMergeRunsK:
    def test_on_disk(self, tmp_path, rng):
        dtype = kv_dtype(1)
        runs = [_run(rng.integers(0, 1000, n)) for n in (400, 250, 150, 90)]
        for index, records in enumerate(runs):
            with RunWriter(tmp_path / f"run{index}", dtype) as writer:
                writer.append(records)
        readers = [RunReader(tmp_path / f"run{index}", dtype)
                   for index in range(len(runs))]
        try:
            with RunWriter(tmp_path / "merged", dtype) as writer:
                emitted = merge_runs_k(readers, writer, window_records=48,
                                       merge_fn=_host_merge)
        finally:
            for reader in readers:
                reader.close()
        assert emitted == sum(r.shape[0] for r in runs)
        with RunReader(tmp_path / "merged", dtype) as reader:
            merged = reader.read_all()
        expected = np.sort(np.concatenate([r["key"] for r in runs]))
        assert np.array_equal(merged["key"], expected)


class TestMergeRuns:
    def test_on_disk(self, tmp_path, rng):
        dtype = kv_dtype(1)
        a = _run(rng.integers(0, 1000, 500))
        b = _run(rng.integers(0, 1000, 300))
        for name, records in (("a", a), ("b", b)):
            with RunWriter(tmp_path / name, dtype) as writer:
                writer.append(records)
        with RunReader(tmp_path / "a", dtype) as reader_a, \
                RunReader(tmp_path / "b", dtype) as reader_b, \
                RunWriter(tmp_path / "c", dtype) as writer:
            emitted = merge_runs(reader_a, reader_b, writer,
                                 window_records=64, merge_fn=_host_merge)
        assert emitted == 800
        with RunReader(tmp_path / "c", dtype) as reader:
            merged = reader.read_all()
        assert np.array_equal(merged["key"],
                              np.sort(np.concatenate([a["key"], b["key"]])))

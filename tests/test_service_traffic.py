"""Simulated-traffic harness: cache identity, determinism, chaos seeds.

These are the tentpole assertions of the service layer: under a seeded
multi-tenant job mix, cached and uncached executions produce byte-identical
contigs *and* byte-identical checkpoint ledgers, the scheduler's execution
order is deterministic, and a chaos seed damaging cache writes degrades to
recompute — never to wrong bytes.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.config import ServiceConfig
from repro.core.checkpoint import STATE_FILE
from repro.faults import BITFLIP, WRITE, Fault, FaultPlan, inject
from repro.service import (AssemblyService, TrafficMix, build_sources,
                           generate_jobs)
from repro.service.content_store import FILES_DIR

MIX = TrafficMix(n_jobs=10, n_sources=3, seed=42)


@pytest.fixture(scope="module")
def traffic(tmp_path_factory):
    """Seeded sources + job list, shared by every harness test (read-only)."""
    root = tmp_path_factory.mktemp("traffic")
    sources = build_sources(root / "data", MIX)
    return generate_jobs(sources, MIX)


def _run(tmp_path, jobs, name, *, cache=True, **overrides):
    kwargs = dict(
        workdir=str(tmp_path / name),
        cache_dir=str(tmp_path / "shared-cache") if cache else "",
        cache_bytes=64 << 20,
        host_budget_bytes=256 << 20,
        device_budget_bytes=32 << 20,
        tenant_weights={"alice": 2.0},
    )
    kwargs.update(overrides)
    return AssemblyService(ServiceConfig(**kwargs)).run_jobs(jobs)


def _contig_bytes(report):
    return {o.spec.job_id: o.contig_bytes() for o in report.outcomes}


def _ledger_hashes(report):
    """sha256 of each *executed* job's checkpoint ledger."""
    hashes = {}
    for outcome in report.outcomes:
        if outcome.executed and outcome.workdir is not None:
            ledger = outcome.workdir / STATE_FILE
            hashes[outcome.spec.job_id] = hashlib.sha256(
                ledger.read_bytes()).hexdigest()
    return hashes


def test_traffic_mix_is_deterministic(traffic):
    assert [spec.job_id for spec in traffic] \
        == [f"job{i:03d}" for i in range(10)]
    # Same seed, same draw: tenants and sources are pinned.
    replay = generate_jobs(sorted({spec.source for spec in traffic}), MIX)
    assert [(s.tenant, s.source) for s in replay] \
        == [(s.tenant, s.source) for s in traffic]
    # n_jobs > n_sources guarantees the repeated-jobs regime.
    assert len({spec.source for spec in traffic}) < len(traffic)


def test_cold_then_warm_cache_identity(tmp_path, traffic):
    """The tentpole: warm hits > 0, everything byte-identical to cold."""
    cold = _run(tmp_path, traffic, "cold")
    warm = _run(tmp_path, traffic, "warm")
    for report in (cold, warm):
        assert report.n_failed == 0, [o.error for o in report.outcomes]
    assert cold.cache["cache_misses"] > 0
    assert cold.cache.get("cache_hits", 0.0) == 0
    assert warm.hit_rate == 1.0  # every phase of every executed job served
    assert warm.cache["cache_hits"] >= len(set(warm.execution_order))
    # Byte-identical contigs per job, cached vs uncached.
    assert _contig_bytes(cold) == _contig_bytes(warm)
    # Byte-identical checkpoint ledgers: the cache-hit path must mirror
    # the uncached path's ledger writes exactly.
    assert _ledger_hashes(cold) == _ledger_hashes(warm)
    # Scheduling is deterministic: identical mixes, identical order.
    assert cold.execution_order == warm.execution_order


def test_cached_matches_uncached(tmp_path, traffic):
    cached = _run(tmp_path, traffic, "cached")
    uncached = _run(tmp_path, traffic, "uncached", cache=False)
    assert cached.n_failed == 0 and uncached.n_failed == 0
    assert _contig_bytes(cached) == _contig_bytes(uncached)
    assert _ledger_hashes(cached) == _ledger_hashes(uncached)
    assert uncached.cache == {}


def test_fairness_holds_under_traffic(tmp_path, traffic):
    report = _run(tmp_path, traffic, "fair", cache=False, batch_max_bytes=0)
    tenants = {spec.job_id: spec.tenant for spec in traffic}
    weights = {"alice": 2.0, "bob": 1.0}
    totals = {t: sum(1 for spec in traffic if spec.tenant == t
                     and spec.job_id in report.execution_order)
              for t in weights}
    for prefix_len in range(1, len(report.execution_order) + 1):
        prefix = report.execution_order[:prefix_len]
        served = {t: sum(1 for job in prefix if tenants[job] == t)
                  for t in weights}
        if all(served[t] < totals[t] for t in weights):
            assert abs(served["alice"] / 2.0 - served["bob"] / 1.0) <= 1.0


def test_no_oversubscription_under_traffic(tmp_path, traffic):
    report = _run(tmp_path, traffic, "busy", cache=False, max_parallel=4,
                  host_budget_bytes=80 << 20, device_budget_bytes=10 << 20,
                  batch_max_bytes=0)
    assert report.n_failed == 0
    assert report.peak_host_bytes <= 80 << 20
    assert report.peak_device_bytes <= 10 << 20


def test_chaos_seed_against_the_cache(tmp_path, traffic):
    """A bitflip on a cache write degrades to recompute, never wrong bytes."""
    baseline = _run(tmp_path, traffic, "baseline", cache=False)
    plan = FaultPlan([Fault(BITFLIP, site=WRITE, match=f"*{FILES_DIR}*",
                            once=False)], seed=MIX.seed)
    with inject(plan):
        damaged = _run(tmp_path, traffic, "damaged")
    assert plan.events, "the chaos seed never fired"
    assert damaged.n_failed == 0
    # Damaged copies poison the *cache*, not the results: every write the
    # pipeline itself consumed was clean, and fetches re-verify digests.
    assert _contig_bytes(damaged) == _contig_bytes(baseline)
    # The second run over the damaged cache detects and recomputes.
    recovered = _run(tmp_path, traffic, "recovered")
    assert recovered.n_failed == 0
    assert recovered.cache["cache_damaged"] >= 1
    assert _contig_bytes(recovered) == _contig_bytes(baseline)

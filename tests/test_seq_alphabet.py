"""Alphabet: encoding, decoding, complementation properties."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import DatasetError
from repro.seq.alphabet import (complement_codes, decode, encode,
                                reverse_complement, reverse_complement_str)

dna = st.text(alphabet="ACGT", min_size=0, max_size=200)


class TestEncodeDecode:
    def test_known_values(self):
        assert list(encode("ACGT")) == [0, 1, 2, 3]
        assert decode(np.array([3, 2, 1, 0], dtype=np.uint8)) == "TGCA"

    def test_lowercase_accepted(self):
        assert np.array_equal(encode("acgt"), encode("ACGT"))

    def test_bytes_input(self):
        assert np.array_equal(encode(b"ACGT"), encode("ACGT"))

    def test_invalid_strict_raises(self):
        with pytest.raises(DatasetError, match="invalid DNA"):
            encode("ACGN")

    def test_invalid_mask_maps_to_a(self):
        assert list(encode("ANT", on_invalid="mask")) == [0, 0, 3]

    def test_decode_rejects_matrix(self):
        with pytest.raises(DatasetError):
            decode(np.zeros((2, 2), dtype=np.uint8))

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(DatasetError):
            decode(np.array([5], dtype=np.uint8))

    @given(dna)
    def test_roundtrip(self, text):
        assert decode(encode(text)) == text


class TestComplement:
    def test_complement_codes(self):
        assert list(complement_codes(np.array([0, 1, 2, 3], dtype=np.uint8))) \
            == [3, 2, 1, 0]

    def test_reverse_complement_string(self):
        assert reverse_complement_str("GATACCAGTA") == "TACTGGTATC"
        assert reverse_complement_str("") == ""

    def test_reverse_complement_batch_rows_independent(self):
        batch = np.array([[0, 1, 2], [3, 3, 3]], dtype=np.uint8)
        out = reverse_complement(batch)
        assert out.tolist() == [[1, 2, 3], [0, 0, 0]]

    @given(dna.filter(bool))
    def test_involution(self, text):
        codes = encode(text)
        assert np.array_equal(reverse_complement(reverse_complement(codes)), codes)

    @given(dna)
    def test_rc_preserves_length_and_alphabet(self, text):
        rc = reverse_complement(encode(text))
        assert rc.shape[0] == len(text)
        assert rc.dtype == np.uint8
        if rc.size:
            assert rc.max() <= 3

    @given(st.text(alphabet="ACGT", min_size=2, max_size=50))
    def test_rc_reverses_concatenation(self, text):
        """rc(xy) == rc(y) + rc(x) — the property WC-pair edges rely on."""
        half = len(text) // 2
        left, right = text[:half], text[half:]
        assert reverse_complement_str(left + right) == \
            reverse_complement_str(right) + reverse_complement_str(left)

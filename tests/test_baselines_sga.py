"""The SGA-analog baseline."""

import pytest

from repro.analysis import contig_accuracy
from repro.baselines import SGAAssembler, exact_overlaps
from repro.baselines.sga import SGA_MODEL_BYTES_PER_BASE
from repro.errors import HostMemoryError


class TestOverlaps:
    def test_overlap_set_equals_naive(self, tiny_batch):
        """The FM-index sweep finds exactly the exact-overlap set."""
        import numpy as np
        from repro.baselines.fm_index import FMIndex

        sga = SGAAssembler(min_overlap=25)
        oriented = np.empty((2 * tiny_batch.n_reads, tiny_batch.read_length),
                            dtype=np.uint8)
        oriented[0::2] = tiny_batch.codes
        oriented[1::2] = tiny_batch.reverse_complements().codes
        found = sga._find_overlaps(FMIndex(oriented), oriented)
        got = {(int(s), int(t), l)
               for l, (ss, tt) in found.items() for s, t in zip(ss, tt)}
        assert got == set(exact_overlaps(tiny_batch, 25))


class TestAssembly:
    def test_end_to_end(self, tiny_md, tiny_batch):
        sga = SGAAssembler(min_overlap=25)
        result = sga.assemble(tiny_batch)
        assert result.n_overlaps > 0
        assert set(result.phase_seconds) == {"preprocess", "index", "overlap",
                                             "assemble"}
        assert result.overlap_pipeline_seconds > 0
        accuracy = contig_accuracy(result.contigs, tiny_md.genome())
        assert accuracy["incorrect"] == 0

    def test_stats(self, tiny_batch):
        result = SGAAssembler(min_overlap=25).assemble(tiny_batch)
        stats = result.stats()
        assert stats["n_contigs"] == result.contigs.n_contigs


class TestMemoryModel:
    def test_modeled_footprint(self):
        sga = SGAAssembler(min_overlap=25)
        assert sga.modeled_index_bytes(1000, 100) == int(100_000 * SGA_MODEL_BYTES_PER_BASE)

    def test_oom_when_over_budget(self, tiny_batch):
        bases = tiny_batch.n_reads * tiny_batch.read_length
        budget = int(bases * SGA_MODEL_BYTES_PER_BASE) - 1
        sga = SGAAssembler(min_overlap=25, host_budget_bytes=budget)
        with pytest.raises(HostMemoryError, match="exceeds the host budget"):
            sga.assemble(tiny_batch)

    def test_fits_when_under_budget(self, tiny_batch):
        bases = tiny_batch.n_reads * tiny_batch.read_length
        sga = SGAAssembler(min_overlap=25,
                           host_budget_bytes=int(bases * SGA_MODEL_BYTES_PER_BASE) + 1)
        assert sga.assemble(tiny_batch).n_overlaps > 0

    def test_table6_oom_pattern_reproduces_at_scale(self):
        """With the fitted constant, exactly the paper's OOM cell appears:
        H.Genome on the 64 GB-analog, and only that cell."""
        from repro.config import MemoryConfig
        from repro.seq.datasets import dataset_registry

        sga = SGAAssembler(min_overlap=63)
        for preset, expect_oom in (("supermic", {"hgenome_sim"}), ("qb2", set())):
            budget = MemoryConfig.preset(preset).host_bytes
            oom = {
                spec.name
                for spec in dataset_registry().values()
                if sga.modeled_index_bytes(spec.paper.reads, spec.read_length) > budget
            }
            assert oom == expect_oom

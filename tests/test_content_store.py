"""Content-addressed artifact cache: keys, LRU, damage detection."""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AssemblyConfig, MemoryConfig
from repro.core.checkpoint import NON_SEMANTIC_KNOBS
from repro.core.pipeline import Assembler
from repro.errors import ConfigError
from repro.faults import BITFLIP, TORN, WRITE, Fault, FaultPlan, inject
from repro.service import ContentStore, phase_key
from repro.service.content_store import FILES_DIR, MANIFEST_FILE


def _make_store(tmp_path, capacity=1 << 20, name="cache"):
    return ContentStore(tmp_path / name, capacity)


def _put_blob(store, workdir, key, payload: bytes, name="blob.bin",
              phase="map", meta=None):
    path = workdir / name
    path.write_bytes(payload)
    assert store.put(key, phase, workdir, [path], meta=meta)
    return path


# -- put / fetch ---------------------------------------------------------------


def test_put_fetch_roundtrip(tmp_path):
    store = _make_store(tmp_path)
    source = tmp_path / "work1"
    source.mkdir()
    _put_blob(store, source, "k1", b"artifact-bytes",
              meta={"n_reads": 7, "lengths": [3, 4]})
    restored = tmp_path / "work2"
    restored.mkdir()
    meta = store.fetch("k1", restored, phase="map")
    assert meta == {"n_reads": 7, "lengths": [3, 4]}
    assert (restored / "blob.bin").read_bytes() == b"artifact-bytes"
    stats = store.stats()
    assert stats["cache_hits"] == 1 and stats["cache_puts"] == 1
    assert stats["hit_rate"] == 1.0


def test_absent_key_is_a_miss(tmp_path):
    store = _make_store(tmp_path)
    assert store.fetch("nope", tmp_path) is None
    assert store.stats()["cache_misses"] == 1
    assert store.stats()["hit_rate"] == 0.0


def test_put_preserves_relative_layout(tmp_path):
    store = _make_store(tmp_path)
    work = tmp_path / "w"
    (work / "partitions").mkdir(parents=True)
    nested = work / "partitions" / "S_00040.run"
    nested.write_bytes(b"\x01\x02")
    assert store.put("k", "map", work, [nested])
    out = tmp_path / "o"
    out.mkdir()
    assert store.fetch("k", out) is not None
    assert (out / "partitions" / "S_00040.run").read_bytes() == b"\x01\x02"


def test_duplicate_put_is_idempotent(tmp_path):
    store = _make_store(tmp_path)
    work = tmp_path / "w"
    work.mkdir()
    _put_blob(store, work, "k", b"payload")
    assert store.put("k", "map", work, [work / "blob.bin"])
    assert len(store) == 1 and store.stats()["cache_puts"] == 1


def test_put_refuses_missing_source(tmp_path):
    store = _make_store(tmp_path)
    work = tmp_path / "w"
    work.mkdir()
    assert not store.put("k", "map", work, [work / "absent.bin"])
    assert "k" not in store


def test_put_refuses_entry_larger_than_capacity(tmp_path):
    store = _make_store(tmp_path, capacity=8)
    work = tmp_path / "w"
    work.mkdir()
    path = work / "big.bin"
    path.write_bytes(b"x" * 64)
    assert not store.put("k", "map", work, [path])
    assert store.stats()["cache_uncacheable"] == 1
    assert len(store) == 0


def test_capacity_must_be_positive(tmp_path):
    with pytest.raises(ConfigError):
        ContentStore(tmp_path / "c", 0)


# -- LRU eviction --------------------------------------------------------------


def test_lru_eviction_by_bytes(tmp_path):
    store = _make_store(tmp_path, capacity=100)
    work = tmp_path / "w"
    work.mkdir()
    for index in range(3):
        _put_blob(store, work, f"k{index}", bytes(30), name=f"b{index}.bin")
    # Refresh k0 so k1 becomes the least recently used.
    out = tmp_path / "o"
    out.mkdir()
    assert store.fetch("k0", out) is not None
    _put_blob(store, work, "k3", bytes(30), name="b3.bin")
    assert "k1" not in store
    assert {"k0", "k2", "k3"} <= set(store.keys())
    assert store.total_bytes <= 100
    assert store.stats()["cache_evictions"] == 1
    assert store.stats()["cache_evicted_bytes"] == 30


def test_eviction_removes_entry_directory(tmp_path):
    store = _make_store(tmp_path, capacity=40)
    work = tmp_path / "w"
    work.mkdir()
    _put_blob(store, work, "old", bytes(30), name="a.bin")
    _put_blob(store, work, "new", bytes(30), name="b.bin")
    assert "old" not in store
    assert not (store.root / "old").exists()


# -- persistence across processes ---------------------------------------------


def test_adopt_existing_entries_and_collect_residue(tmp_path):
    store = _make_store(tmp_path)
    work = tmp_path / "w"
    work.mkdir()
    _put_blob(store, work, "k0", b"aa", name="a.bin")
    _put_blob(store, work, "k1", b"bb", name="b.bin")
    # Refresh k0: the persisted seq order must restore this recency.
    out = tmp_path / "o"
    out.mkdir()
    store.fetch("k0", out)
    # An uncommitted put (no manifest) left behind by a crash.
    residue = store.root / "deadbeef" / FILES_DIR
    residue.mkdir(parents=True)
    (residue / "junk.bin").write_bytes(b"junk")
    reopened = ContentStore(store.root, 1 << 20)
    assert set(reopened.keys()) == {"k1", "k0"}
    assert not (store.root / "deadbeef").exists()
    assert reopened.fetch("k1", out) is not None


def test_adopt_drops_manifest_gibberish(tmp_path):
    store = _make_store(tmp_path)
    bad = store.root / "0badkey"
    bad.mkdir()
    (bad / MANIFEST_FILE).write_text("{not json")
    reopened = ContentStore(store.root, 1 << 20)
    assert len(reopened) == 0
    assert not bad.exists()


# -- damage detection (the fault-plan regression, satellite fix) ---------------


def test_damaged_entry_detected_and_dropped(tmp_path):
    store = _make_store(tmp_path)
    work = tmp_path / "w"
    work.mkdir()
    _put_blob(store, work, "k", b"pristine-artifact-bytes")
    stored = store.root / "k" / FILES_DIR / "blob.bin"
    raw = bytearray(stored.read_bytes())
    raw[3] ^= 0x40
    stored.write_bytes(bytes(raw))
    out = tmp_path / "o"
    out.mkdir()
    assert store.fetch("k", out) is None  # damage = miss, never bad bytes
    assert store.stats()["cache_damaged"] == 1
    assert "k" not in store and not (store.root / "k").exists()


def test_bitflip_during_cache_write_is_caught_at_fetch(tmp_path):
    """A fault plan flipping a bit in the cache *copy* must not poison reads.

    ``put`` records digests of the source artifacts, so the flipped cache
    copy disagrees at ``fetch`` time and the entry is dropped — the
    regression this PR fixes (cache lookups respect armed fault plans).
    """
    store = _make_store(tmp_path)
    work = tmp_path / "w"
    work.mkdir()
    plan = FaultPlan([Fault(BITFLIP, site=WRITE, match=f"*{FILES_DIR}*")])
    with inject(plan):
        _put_blob(store, work, "k", b"bytes-the-tenant-expects")
    assert [event.kind for event in plan.events] == [BITFLIP]
    out = tmp_path / "o"
    out.mkdir()
    assert store.fetch("k", out) is None
    assert store.stats()["cache_damaged"] == 1
    # Recompute-and-republish path: a clean put serves hits again.
    _put_blob(store, work, "k", b"bytes-the-tenant-expects")
    assert store.fetch("k", out) == {}
    assert (out / "blob.bin").read_bytes() == b"bytes-the-tenant-expects"


def test_torn_manifest_write_leaves_no_committed_entry(tmp_path):
    store = _make_store(tmp_path)
    work = tmp_path / "w"
    work.mkdir()
    path = work / "blob.bin"
    path.write_bytes(b"payload")
    from repro.errors import FaultInjected
    from repro.faults import LEDGER

    plan = FaultPlan([Fault(TORN, site=LEDGER, match=f"*{MANIFEST_FILE}")])
    with inject(plan), pytest.raises(FaultInjected):
        store.put("k", "map", work, [path])
    assert "k" not in store
    # The manifest-less residue is garbage-collected on the next adopt.
    reopened = ContentStore(store.root, 1 << 20)
    assert len(reopened) == 0
    assert not (store.root / "k").exists()


def test_pipeline_recomputes_through_damaged_cache(tmp_path, tiny_md,
                                                   laptop_config):
    """End-to-end satellite regression: a damaged entry falls back cleanly."""
    store = ContentStore(tmp_path / "cache", 64 << 20)
    baseline = Assembler(laptop_config).assemble(tiny_md.store_path)
    plan = FaultPlan([Fault(BITFLIP, site=WRITE, match=f"*{FILES_DIR}*")])
    with inject(plan):
        cold = Assembler(laptop_config, content_store=store).assemble(
            tiny_md.store_path)
    assert [event.kind for event in plan.events] == [BITFLIP]
    warm = Assembler(laptop_config, content_store=store).assemble(
        tiny_md.store_path)
    assert store.stats()["cache_damaged"] >= 1
    for result in (cold, warm):
        assert result.contigs.flat_codes.tobytes() \
            == baseline.contigs.flat_codes.tobytes()
        assert result.contigs.offsets.tobytes() \
            == baseline.contigs.offsets.tobytes()


# -- legacy-formulation byte-identity through the cache -------------------------


@pytest.mark.parametrize("legacy_env", [
    {"REPRO_LEGACY_SCAN": "1"},
    {"REPRO_LEGACY_IO": "1"},
    {"REPRO_LEGACY_SCAN": "1", "REPRO_LEGACY_IO": "1"},
])
def test_legacy_modes_byte_identical_through_cache(tmp_path, tiny_md,
                                                   laptop_config, monkeypatch,
                                                   legacy_env):
    """Legacy scan/IO formulations share cache entries byte-for-byte.

    ``REPRO_LEGACY_SCAN`` / ``REPRO_LEGACY_IO`` are execution-only toggles:
    they must not move the cache key, and artifacts published under a
    legacy formulation must serve the modern run (and vice versa) with the
    exact bytes — the digest check would surface any divergence as damage.
    """
    store = ContentStore(tmp_path / "cache", 64 << 20)
    baseline = Assembler(laptop_config).assemble(tiny_md.store_path)
    for name, value in legacy_env.items():
        monkeypatch.setenv(name, value)
    cold = Assembler(laptop_config, content_store=store).assemble(
        tiny_md.store_path)
    for name in legacy_env:
        monkeypatch.delenv(name)
    warm = Assembler(laptop_config, content_store=store).assemble(
        tiny_md.store_path)
    assert store.stats().get("cache_damaged", 0) == 0
    assert store.stats()["cache_hits"] > 0, \
        "legacy-published entries missed under the modern formulation"
    for result in (cold, warm):
        assert result.contigs.flat_codes.tobytes() \
            == baseline.contigs.flat_codes.tobytes()
        assert result.contigs.offsets.tobytes() \
            == baseline.contigs.offsets.tobytes()


# -- cache-key stability (satellite property test) -----------------------------

#: (field, changed value) for every execution-only knob: none may move the key.
_NON_SEMANTIC_CHANGES = {
    "workers": 7,
    "executor_backend": "threads",
    "trace": "/tmp/somewhere",
    "keep_workdir": True,
    "heartbeat_interval": 0.75,
    "node_timeout": 9.0,
    "reduce_max_attempts": 5,
    "retry_backoff_s": 1.25,
    "node_restarts": 3,
    "allow_degraded": False,
    "buffer_pool": False,
    "pool_max_bytes": 32 << 20,
    "chunk_checkpoint_every": 512,
    "speculation_threshold": 0.5,
    "allow_join": True,
}

#: (field, changed value) for semantic knobs: each must change the key.
_SEMANTIC_CHANGES = {
    "min_overlap": 31,
    "fingerprint_lanes": 2,
    "map_batch_reads": 128,
    "host_block_pairs": 4096,
    "device_block_pairs": 512,
    "merge_fanout": 4,
    "dedupe_contigs": False,
    "device_name": "V100",
    "seed": 1234,
    "memory": MemoryConfig(2 << 30, 128 << 20),
}


def test_change_tables_cover_every_config_field():
    """A new AssemblyConfig field must be classified semantic or not."""
    fields = {f.name for f in dataclasses.fields(AssemblyConfig)}
    classified = set(_NON_SEMANTIC_CHANGES) | set(_SEMANTIC_CHANGES)
    assert fields == classified
    assert set(_NON_SEMANTIC_CHANGES) == set(NON_SEMANTIC_KNOBS)


@settings(max_examples=25, deadline=None)
@given(phase=st.sampled_from(["load", "map", "sort", "reduce"]),
       inputs=st.lists(st.text(min_size=1, max_size=12), min_size=1,
                       max_size=4),
       knob=st.sampled_from(sorted(_NON_SEMANTIC_CHANGES)))
def test_non_semantic_knobs_never_move_the_key(phase, inputs, knob):
    base = AssemblyConfig(min_overlap=21)
    changed = dataclasses.replace(base, **{knob: _NON_SEMANTIC_CHANGES[knob]})
    assert getattr(changed, knob) != getattr(base, knob)
    assert phase_key(phase, inputs, base) == phase_key(phase, inputs, changed)


@pytest.mark.parametrize("knob", sorted(_SEMANTIC_CHANGES))
def test_every_semantic_knob_moves_the_key(knob):
    base = AssemblyConfig(min_overlap=21)
    changed = dataclasses.replace(base, **{knob: _SEMANTIC_CHANGES[knob]})
    assert phase_key("map", ["reads:abc"], base) \
        != phase_key("map", ["reads:abc"], changed)


def test_key_depends_on_phase_and_inputs():
    config = AssemblyConfig(min_overlap=21)
    assert phase_key("map", ["reads:abc"], config) \
        != phase_key("sort", ["reads:abc"], config)
    assert phase_key("map", ["reads:abc"], config) \
        != phase_key("map", ["reads:abd"], config)
    assert phase_key("map", ["a", "b"], config) \
        != phase_key("map", ["b", "a"], config)


def test_key_is_stable_json_not_repr():
    """Keys survive a round-trip through the manifest's JSON layer."""
    config = AssemblyConfig(min_overlap=21)
    key = phase_key("map", ["reads:abc"], config)
    assert key == json.loads(json.dumps(key))
    assert len(key) == 24 and all(c in "0123456789abcdef" for c in key)

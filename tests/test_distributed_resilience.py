"""Distributed resilience: retry policy, heartbeats, recovery, degraded mode.

The property at the center: a seeded node-crash run that fully recovers is
*byte-identical* to the clean run — same contigs, same offsets, same edge
set — because restarts replay ledger-damaged partitions from retained
lineage in their original byte order. Degraded runs (recovery exhausted)
complete on the survivors and report the drop instead of raising.
"""

from __future__ import annotations

import pytest

from repro.config import AssemblyConfig
from repro.device import SimClock
from repro.distributed import (ActiveMessageLayer, DistributedAssembler,
                               NetworkSpec, node_scope)
from repro.errors import (ConfigError, FaultInjected, MessageDropped,
                          RetryExhausted)
from repro.faults import (CHUNK, MESSAGE, MSG_DELAY, MSG_DROP, NODE,
                          NODE_CRASH, Fault, FaultPlan, RetryPolicy, inject)
from repro.faults.plan import DEFAULT_MSG_DELAY_S
from repro.seq.datasets import tiny_dataset
from repro.trace import (EVENTS_FILE, check_balanced, load_events,
                         resilience_events)

MIN_OVERLAP = 24
N_NODES = 3


@pytest.fixture(scope="module")
def resilience_data(tmp_path_factory):
    """A dataset small enough that a ~15-run crash sweep stays fast."""
    root = tmp_path_factory.mktemp("resilience-data")
    md, _ = tiny_dataset(root, genome_length=600, read_length=36,
                         coverage=8.0, min_overlap=MIN_OVERLAP, seed=7)
    return md


@pytest.fixture()
def config() -> AssemblyConfig:
    return AssemblyConfig(min_overlap=MIN_OVERLAP, seed=7)


@pytest.fixture(scope="module")
def clean_run(resilience_data):
    """The golden distributed result plus the node-op probe trace."""
    config = AssemblyConfig(min_overlap=MIN_OVERLAP, seed=7)
    plan = FaultPlan()
    with inject(plan):
        result = DistributedAssembler(config, N_NODES).assemble(
            resilience_data.store_path)
    node_ops = [t for t in plan.trace if t.site == NODE]
    return result, node_ops


def _identity(result) -> tuple:
    return (result.contigs.flat_codes.tobytes(),
            result.contigs.offsets.tobytes(), result.edges)


# -- RetryPolicy ---------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_is_a_pure_function_of_seed_key_attempt(self):
        policy = RetryPolicy(seed=3)
        assert policy.backoff_s(1, key="op") == policy.backoff_s(1, key="op")
        assert policy.backoff_s(1, key="op") != policy.backoff_s(2, key="op")
        assert policy.backoff_s(1, key="op") != policy.backoff_s(1, key="other")
        assert RetryPolicy(seed=4).backoff_s(1, key="op") \
            != policy.backoff_s(1, key="op")

    def test_backoff_grows_within_jitter_and_caps(self):
        policy = RetryPolicy(max_attempts=8, base_backoff_s=1.0,
                             backoff_multiplier=2.0, max_backoff_s=5.0,
                             jitter_fraction=0.1)
        for attempt in range(1, 8):
            raw = 1.0 * 2.0 ** (attempt - 1)
            delay = policy.backoff_s(attempt)
            assert delay <= 5.0
            if raw * 0.9 <= 5.0:
                assert 0.9 * raw <= delay <= min(1.1 * raw, 5.0)

    def test_delays_one_per_allowed_retry(self):
        policy = RetryPolicy(max_attempts=4)
        assert len(policy.delays("k")) == 3
        assert RetryPolicy(max_attempts=1).delays() == ()

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_backoff_s=-1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter_fraction=1.0)

    def test_run_retries_until_success(self):
        policy = RetryPolicy(max_attempts=3, seed=11)
        calls, backoffs = [], []

        def flaky(attempt: int) -> str:
            calls.append(attempt)
            if attempt < 2:
                raise ValueError("transient")
            return "done"

        result = policy.run(flaky, key="flaky",
                            on_backoff=lambda a, d, e: backoffs.append((a, d)))
        assert result == "done"
        assert calls == [0, 1, 2]
        assert [d for _, d in backoffs] == list(policy.delays("flaky"))

    def test_run_exhaustion_is_typed(self):
        policy = RetryPolicy(max_attempts=2, seed=11)
        calls = []

        def doomed(attempt: int):
            calls.append(attempt)
            raise ValueError("persistent")

        with pytest.raises(RetryExhausted, match="doomed.*2 attempts"):
            policy.run(doomed, key="doomed", retry_on=(ValueError,))
        assert calls == [0, 1]


# -- per-scope crash bookkeeping ----------------------------------------------


class TestScopedCrashes:
    def test_clear_crash_is_per_scope(self):
        plan = FaultPlan([Fault(NODE_CRASH, site=NODE, match="node00:*"),
                          Fault(NODE_CRASH, site=NODE, match="node01:*")])
        with inject(plan):
            with pytest.raises(FaultInjected):
                plan.node_op("node00", "sort")
            with pytest.raises(FaultInjected):
                plan.node_op("node01", "sort")
            assert plan.crashed_scopes == ("node00", "node01")
            plan.clear_crash(scope="node00")
            assert plan.crashed_scopes == ("node01",)
            plan.clear_crash(scope="node00")  # idempotent
            assert plan.crashed_scopes == ("node01",)
            plan.clear_crash()  # bare call: everything
            assert not plan.crashed

    def test_node_op_match_is_scope_and_op_specific(self):
        plan = FaultPlan([Fault(NODE_CRASH, site=NODE, match="node02:reduce*")])
        with inject(plan):
            plan.node_op("node02", "sort")        # wrong op: no fire
            plan.node_op("node00", "reduce[30]")  # wrong scope: no fire
            with pytest.raises(FaultInjected):
                plan.node_op("node02", "reduce[30]")
        assert [e.kind for e in plan.events] == [NODE_CRASH]

    def test_seeded_cluster_plans_deterministic(self):
        first, second = (FaultPlan.seeded_cluster(5, 50),
                         FaultPlan.seeded_cluster(5, 50))
        assert first.pending == second.pending
        for seed in range(10):
            fault = FaultPlan.seeded_cluster(seed, 20).pending[0]
            assert (fault.site == NODE) == (fault.kind == NODE_CRASH)
            if fault.site == MESSAGE:
                assert fault.kind in (MSG_DROP, MSG_DELAY)


# -- message-layer faults ------------------------------------------------------


class TestMessageFaults:
    def _layer(self):
        layer = ActiveMessageLayer(NetworkSpec(bandwidth=1e6,
                                               latency_seconds=0.0))
        clocks = {0: SimClock(), 1: SimClock()}
        for node_id, clock in clocks.items():
            layer.register_node(node_id, clock)
        layer.register_handler(1, "echo", lambda x: (x, 8))
        return layer, clocks

    def test_msg_drop_charges_sender_and_is_retryable(self):
        layer, clocks = self._layer()
        plan = FaultPlan([Fault(MSG_DROP, site=MESSAGE, match="*echo")])
        with inject(plan):
            with pytest.raises(MessageDropped):
                layer.request(0, 1, "echo", 7)
            assert layer.messages_dropped == 1
            assert clocks[0].seconds("network") > 0  # the attempt was paid for
            assert layer.request(0, 1, "echo", 7) == 7  # once-fault disarmed

    def test_msg_delay_adds_latency(self):
        layer, clocks = self._layer()
        plan = FaultPlan([Fault(MSG_DELAY, site=MESSAGE, seconds=0.5)])
        with inject(plan):
            baseline = clocks[0].seconds("network")
            assert layer.request(0, 1, "echo", 7) == 7
        assert layer.messages_delayed == 1
        assert clocks[0].seconds("network") - baseline >= 0.5

    def test_msg_delay_zero_means_default(self):
        layer, clocks = self._layer()
        plan = FaultPlan([Fault(MSG_DELAY, site=MESSAGE)])
        with inject(plan):
            layer.request(0, 1, "echo", 7)
        assert clocks[0].seconds("network") >= DEFAULT_MSG_DELAY_S

    def test_node_crash_in_flight_kills_destination(self):
        layer, _ = self._layer()
        plan = FaultPlan([Fault(NODE_CRASH, site=MESSAGE)])
        with inject(plan):
            with pytest.raises(FaultInjected):
                layer.request(0, 1, "echo", 7)
            assert plan.crashed_scopes == (node_scope(1),)
        assert layer.messages_sent == 0


# -- the byte-identity property ------------------------------------------------


class TestRecoveryByteIdentity:
    def _crash_ops(self, node_ops) -> list[int]:
        """Every reduce-boundary op, plus one op of each other kind."""
        ops, seen_kinds = [], set()
        for point in node_ops:
            op_name = point.path.split(":", 1)[1]
            kind = op_name.split("[", 1)[0]
            if kind == "reduce":
                ops.append(point.op)
            elif kind not in seen_kinds:
                seen_kinds.add(kind)
                ops.append(point.op)
        return ops

    def test_node_crash_at_every_reduce_boundary_recovers(
            self, resilience_data, config, clean_run):
        clean, node_ops = clean_run
        crash_ops = self._crash_ops(node_ops)
        assert sum(1 for p in node_ops
                   if ":reduce[" in p.path and p.op in crash_ops) >= 3
        for op in crash_ops:
            plan = FaultPlan([Fault(NODE_CRASH, site=NODE, at_op=op)])
            with inject(plan):
                recovered = DistributedAssembler(config, N_NODES).assemble(
                    resilience_data.store_path)
            assert [e.kind for e in plan.events] == [NODE_CRASH], \
                f"crash at op {op} did not fire"
            assert recovered.degraded is None, f"crash at op {op} degraded"
            assert _identity(recovered) == _identity(clean), \
                f"crash at op {op} changed the output"
            assert recovered.notes["node_restarts"] >= 1

    def test_shuffle_msg_drop_retry_is_byte_identical(self, resilience_data,
                                                      config, clean_run):
        clean, _ = clean_run
        plan = FaultPlan([Fault(MSG_DROP, site=MESSAGE,
                                match="*fetch_partition")])
        with inject(plan):
            result = DistributedAssembler(config, N_NODES).assemble(
                resilience_data.store_path)
        assert result.notes["am_dropped"] == 1
        assert result.notes["retries"] >= 1
        assert result.notes["backoffs"] >= 1
        assert result.degraded is None
        assert _identity(result) == _identity(clean)

    def test_same_seed_same_fault_identical_timeline(self, resilience_data,
                                                     config, clean_run):
        _, node_ops = clean_run
        reduce_op = next(p.op for p in node_ops if ":reduce[" in p.path)
        runs = []
        for _ in range(2):
            plan = FaultPlan([Fault(NODE_CRASH, site=NODE, at_op=reduce_op)])
            with inject(plan):
                runs.append(DistributedAssembler(config, N_NODES).assemble(
                    resilience_data.store_path))
        assert runs[0].token_trace == runs[1].token_trace
        assert runs[0].phase_seconds == runs[1].phase_seconds
        assert runs[0].notes == runs[1].notes


# -- the token timeline --------------------------------------------------------


class TestTokenTimeline:
    def test_clean_run_first_attempts_only(self, clean_run):
        clean, _ = clean_run
        assert clean.token_trace
        assert all(e["ok"] and e["attempt"] == 0 for e in clean.token_trace)
        for knob in ("retries", "backoffs", "node_restarts", "failovers"):
            assert knob not in clean.notes

    def test_token_time_monotone_under_faults(self, resilience_data, config,
                                              clean_run):
        _, node_ops = clean_run
        reduce_op = next(p.op for p in node_ops if ":reduce[" in p.path)
        plan = FaultPlan([Fault(NODE_CRASH, site=NODE, at_op=reduce_op)])
        with inject(plan):
            result = DistributedAssembler(config, N_NODES).assemble(
                resilience_data.store_path)
        failures = [e for e in result.token_trace if not e["ok"]]
        assert failures and all(e["wasted_s"] >= 0 for e in failures)
        hops = [e for e in result.token_trace if e["ok"]]
        last = 0.0
        for hop in hops:
            assert hop["sim0"] >= last, "token went backward"
            assert hop["sim1"] >= hop["sim0"]
            last = hop["sim1"]
        # The token visited every partition exactly once despite the crash.
        ok_lengths = [e["length"] for e in hops]
        assert sorted(ok_lengths) == sorted(set(ok_lengths))


# -- degraded-mode completion --------------------------------------------------


class TestDegradedMode:
    def test_unrecoverable_partition_drops_instead_of_raising(
            self, resilience_data, config, clean_run):
        clean, _ = clean_run
        victim = clean.token_trace[len(clean.token_trace) // 2]["length"]
        # fnmatch treats "[...]" as a character class — escape the bracket.
        plan = FaultPlan([Fault(NODE_CRASH, site=NODE,
                                match=f"*:reduce[[]{victim}]", once=False)])
        with inject(plan):
            result = DistributedAssembler(config, N_NODES).assemble(
                resilience_data.store_path)
        degraded = result.degraded
        assert degraded is not None
        assert degraded.dropped_lengths == (victim,)
        assert degraded.node_restarts >= 1 and degraded.lost_nodes
        assert victim not in [e["length"] for e in result.token_trace if e["ok"]]
        summary = degraded.summary()
        assert "DEGRADED RUN" in summary and str(victim) in summary
        # Contig-level impact is quantified against the clean total.
        assert degraded.candidates_dropped > 0
        assert degraded.candidates_total >= degraded.candidates_dropped
        # Every other partition still made it through.
        ok = {e["length"] for e in result.token_trace if e["ok"]}
        assert ok == {e["length"] for e in clean.token_trace} - {victim}

    def test_strict_mode_covered_elsewhere(self):
        # allow_degraded=False → DistributedProtocolError("token lost") is
        # exercised in tests/test_chaos_recovery.py::TestDistributedToken.
        assert AssemblyConfig(allow_degraded=False).allow_degraded is False

    def test_resilience_knob_validation(self):
        with pytest.raises(ConfigError):
            AssemblyConfig(heartbeat_interval=0.0)
        with pytest.raises(ConfigError):
            AssemblyConfig(heartbeat_interval=2.0, node_timeout=1.0)
        with pytest.raises(ConfigError):
            AssemblyConfig(reduce_max_attempts=0)
        with pytest.raises(ConfigError):
            AssemblyConfig(node_restarts=-1)


# -- incremental chunk checkpoints (tentpole) -----------------------------------

#: Shrunken device windows + a small chunk budget so the 600bp dataset's
#: partitions span several chunks (~4 commits per partition, ~46 barriers).
CHUNK_EVERY = 128
CHUNK_DEVICE_BLOCK = 48


@pytest.fixture(scope="module")
def chunked_clean(resilience_data):
    """A clean chunk-checkpointed run plus its chunk-barrier probe trace."""
    config = AssemblyConfig(min_overlap=MIN_OVERLAP, seed=7,
                            device_block_pairs=CHUNK_DEVICE_BLOCK,
                            chunk_checkpoint_every=CHUNK_EVERY)
    plan = FaultPlan()
    with inject(plan):
        result = DistributedAssembler(config, N_NODES).assemble(
            resilience_data.store_path)
    chunk_points = [t for t in plan.trace if t.site == CHUNK]
    return result, chunk_points


class TestChunkCheckpoints:
    def test_chunking_is_execution_only(self, clean_run, chunked_clean):
        """Chunk commits change recovery cost, never a single output byte.

        The chunked fixture also shrinks the device window; per-window
        canonicalization makes the result byte-identical to the default
        clean run regardless, so the comparison stays one golden identity.
        """
        clean, _ = clean_run
        chunked, chunk_points = chunked_clean
        assert _identity(chunked) == _identity(clean)
        assert len(chunk_points) >= 24, "partitions never spanned chunks"
        assert any(p.path.endswith("#3") for p in chunk_points), \
            "no partition reached a fourth chunk"
        assert chunked.notes["chunks_committed"] == len(chunk_points)
        # A clean run resumes nothing and leaves no chunk rows behind.
        assert "chunk_resumes" not in chunked.notes

    def test_node_crash_at_every_chunk_boundary_recovers(
            self, resilience_data, chunked_clean):
        """The intra-partition kill-point sweep: byte-identical every time."""
        chunked, chunk_points = chunked_clean
        config = AssemblyConfig(min_overlap=MIN_OVERLAP, seed=7,
                                device_block_pairs=CHUNK_DEVICE_BLOCK,
                                chunk_checkpoint_every=CHUNK_EVERY)
        resumes = 0
        for point in chunk_points:
            plan = FaultPlan([Fault(NODE_CRASH, site=CHUNK, at_op=point.op)])
            with inject(plan):
                recovered = DistributedAssembler(config, N_NODES).assemble(
                    resilience_data.store_path)
            assert [e.kind for e in plan.events] == [NODE_CRASH], \
                f"chunk kill-point {point.path} did not fire"
            assert recovered.degraded is None
            assert _identity(recovered) == _identity(chunked), \
                f"crash at {point.path} changed the output"
            assert recovered.notes["node_restarts"] >= 1
            resumes += recovered.notes.get("chunk_resumes", 0)
        # Crashing past the first boundary leaves durable chunks to skip, so
        # the sweep as a whole must exercise the resume path.
        assert resumes >= 1


# -- speculative re-execution (tentpole) -----------------------------------------


class TestSpeculation:
    def _config(self) -> AssemblyConfig:
        return AssemblyConfig(min_overlap=MIN_OVERLAP, seed=7,
                              speculation_threshold=0.25)

    def test_backup_race_is_byte_identical(self, resilience_data, clean_run):
        clean, node_ops = clean_run
        reduce_op = next(p.op for p in node_ops if ":reduce[" in p.path)
        plan = FaultPlan([Fault(NODE_CRASH, site=NODE, at_op=reduce_op)])
        with inject(plan):
            result = DistributedAssembler(self._config(), N_NODES).assemble(
                resilience_data.store_path)
        assert result.degraded is None
        assert _identity(result) == _identity(clean)
        # The dead owner's partition was raced: exactly one contender won
        # and every losing contender is accounted as waste, not output.
        assert result.notes["speculations"] >= 1
        assert result.notes.get("speculation_wins", 0) \
            + result.notes.get("speculation_losses", 0) \
            == result.notes["speculations"]

    def test_speculation_is_deterministic(self, resilience_data, clean_run):
        _, node_ops = clean_run
        reduce_op = next(p.op for p in node_ops if ":reduce[" in p.path)
        runs = []
        for _ in range(2):
            plan = FaultPlan([Fault(NODE_CRASH, site=NODE, at_op=reduce_op)])
            with inject(plan):
                runs.append(DistributedAssembler(
                    self._config(), N_NODES).assemble(
                        resilience_data.store_path))
        assert runs[0].token_trace == runs[1].token_trace
        assert runs[0].notes == runs[1].notes
        assert _identity(runs[0]) == _identity(runs[1])

    def test_threshold_zero_never_speculates(self, resilience_data, config,
                                             clean_run):
        _, node_ops = clean_run
        reduce_op = next(p.op for p in node_ops if ":reduce[" in p.path)
        plan = FaultPlan([Fault(NODE_CRASH, site=NODE, at_op=reduce_op)])
        with inject(plan):
            result = DistributedAssembler(config, N_NODES).assemble(
                resilience_data.store_path)
        assert "speculations" not in result.notes

    def test_threshold_validation(self):
        with pytest.raises(ConfigError):
            AssemblyConfig(speculation_threshold=-1.0)
        with pytest.raises(ConfigError):
            AssemblyConfig(heartbeat_interval=0.5, node_timeout=2.0,
                           speculation_threshold=0.25)


# -- elastic membership (tentpole) -----------------------------------------------


class TestElasticMembership:
    def test_joins_require_allow_join(self, config):
        with pytest.raises(ConfigError, match="allow_join"):
            DistributedAssembler(config, 2, joins=(1,))

    def test_negative_join_hop_rejected(self):
        joinable = AssemblyConfig(min_overlap=MIN_OVERLAP, seed=7,
                                  allow_join=True)
        with pytest.raises(ConfigError):
            DistributedAssembler(joinable, 2, joins=(-1,))

    def test_mid_run_join_is_byte_identical(self, resilience_data, clean_run):
        clean, _ = clean_run
        joinable = AssemblyConfig(min_overlap=MIN_OVERLAP, seed=7,
                                  allow_join=True)
        result = DistributedAssembler(joinable, N_NODES,
                                      joins=(1,)).assemble(
                                          resilience_data.store_path)
        assert result.degraded is None
        assert _identity(result) == _identity(clean)
        assert result.notes["nodes_joined"] == 1
        assert result.notes["join_rebalanced"] >= 1
        # The joiner (node id == mapping-time node count) really took over
        # partitions: the token visits it like any founding member.
        joiner_hops = [e for e in result.token_trace
                       if e["ok"] and e["node"] == N_NODES]
        assert len(joiner_hops) >= 1
        ok_lengths = [e["length"] for e in result.token_trace if e["ok"]]
        assert sorted(ok_lengths) == sorted(set(ok_lengths))
        assert sorted(ok_lengths) == sorted(
            e["length"] for e in clean.token_trace)


# -- tracing -------------------------------------------------------------------


class TestTracedResilience:
    def test_chaos_run_trace_is_balanced_and_counted(self, resilience_data,
                                                     tmp_path):
        trace_dir = tmp_path / "trace"
        traced = AssemblyConfig(min_overlap=MIN_OVERLAP, seed=7,
                                trace=str(trace_dir))
        # A drop in the shuffle (retried in place, with backoff) plus a node
        # crash at the first reduce boundary (restart + replay).
        plan = FaultPlan([Fault(NODE_CRASH, site=NODE, match="*:reduce[[]*"),
                          Fault(MSG_DROP, site=MESSAGE,
                                match="*fetch_partition")])
        with inject(plan):
            result = DistributedAssembler(traced, N_NODES).assemble(
                resilience_data.store_path)
        events = load_events(trace_dir / EVENTS_FILE)
        check_balanced(events)
        counts = resilience_events(events)
        assert counts["restarts"] == result.notes["node_restarts"] >= 1
        assert counts["heartbeat_misses"] >= 1
        assert counts["backoffs"] == result.notes["backoffs"] >= 1
        assert counts["backoff_sim_s"] == pytest.approx(
            result.notes["backoff_s"])
        assert counts["token_retries"] >= 1
        assert counts["nodes_lost"] == counts["partitions_dropped"] == 0

    def test_speculation_spans_counted(self, resilience_data, tmp_path,
                                       clean_run):
        _, node_ops = clean_run
        reduce_op = next(p.op for p in node_ops if ":reduce[" in p.path)
        trace_dir = tmp_path / "trace"
        traced = AssemblyConfig(min_overlap=MIN_OVERLAP, seed=7,
                                trace=str(trace_dir),
                                speculation_threshold=0.25)
        plan = FaultPlan([Fault(NODE_CRASH, site=NODE, at_op=reduce_op)])
        with inject(plan):
            result = DistributedAssembler(traced, N_NODES).assemble(
                resilience_data.store_path)
        events = load_events(trace_dir / EVENTS_FILE)
        check_balanced(events)
        counts = resilience_events(events)
        assert counts["speculations"] == result.notes["speculations"] >= 1
        assert counts["speculation_wins"] + counts["speculation_losses"] \
            == counts["speculations"]
        assert counts["speculation_wasted_sim_s"] >= 0.0

    def test_join_spans_counted(self, resilience_data, tmp_path):
        trace_dir = tmp_path / "trace"
        traced = AssemblyConfig(min_overlap=MIN_OVERLAP, seed=7,
                                trace=str(trace_dir), allow_join=True)
        result = DistributedAssembler(traced, N_NODES, joins=(1,)).assemble(
            resilience_data.store_path)
        events = load_events(trace_dir / EVENTS_FILE)
        check_balanced(events)
        counts = resilience_events(events)
        assert counts["nodes_joined"] == result.notes["nodes_joined"] == 1

    def test_clean_run_emits_no_resilience_events(self, resilience_data,
                                                  tmp_path):
        trace_dir = tmp_path / "trace"
        traced = AssemblyConfig(min_overlap=MIN_OVERLAP, seed=7,
                                trace=str(trace_dir))
        DistributedAssembler(traced, 2).assemble(resilience_data.store_path)
        counts = resilience_events(load_events(trace_dir / EVENTS_FILE))
        assert all(v == 0 for v in counts.values())

"""ReadBatch: construction, ids, reverse complements."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.seq.records import ReadBatch


class TestConstruction:
    def test_from_strings(self):
        batch = ReadBatch.from_strings(["ACGT", "TTTT"], start_id=7)
        assert batch.n_reads == 2
        assert batch.read_length == 4
        assert batch.strings() == ["ACGT", "TTTT"]
        assert list(batch.read_ids) == [7, 8]

    def test_from_strings_empty(self):
        batch = ReadBatch.from_strings([])
        assert batch.n_reads == 0 and len(batch) == 0

    def test_unequal_lengths_rejected(self):
        with pytest.raises(DatasetError, match="same length"):
            ReadBatch.from_strings(["ACG", "ACGT"])

    def test_requires_matrix(self):
        with pytest.raises(DatasetError):
            ReadBatch(np.zeros(4, dtype=np.uint8))

    def test_negative_start_id_rejected(self):
        with pytest.raises(DatasetError):
            ReadBatch(np.zeros((1, 4), dtype=np.uint8), start_id=-1)

    def test_mask_policy_passthrough(self):
        batch = ReadBatch.from_strings(["ANGT"], on_invalid="mask")
        assert batch.strings() == ["AAGT"]


class TestBehaviour:
    def test_reverse_complements(self):
        batch = ReadBatch.from_strings(["ACGT", "AAAA"], start_id=3)
        rc = batch.reverse_complements()
        assert rc.strings() == ["ACGT", "TTTT"]
        assert rc.start_id == 3  # ids unchanged

    def test_iteration_yields_rows(self):
        batch = ReadBatch.from_strings(["AC", "GT"])
        rows = list(batch)
        assert len(rows) == 2 and rows[1].tolist() == [2, 3]

    def test_read_ids_dtype(self):
        batch = ReadBatch.from_strings(["A" * 5] * 3, start_id=2**31)
        assert batch.read_ids.dtype == np.uint32

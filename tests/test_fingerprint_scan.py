"""Hillis–Steele fingerprint scans vs the scalar Rabin–Karp reference.

This is the core correctness property of the map phase: the batched
log-step scan (Figs. 5–6) must agree exactly with Horner's rule on every
prefix and with direct evaluation on every suffix.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.fingerprint import (naive_prefix_fingerprints, naive_suffix_fingerprints,
                               prefix_fingerprints_batch, suffix_fingerprints_batch)
from repro.fingerprint.rabin_karp import HashSpec
from repro.seq.alphabet import encode

hash_specs = st.sampled_from([HashSpec.lane(i) for i in range(4)]
                             + [HashSpec(5, 13), HashSpec(7, 101)])
read_matrix = st.integers(1, 40).flatmap(
    lambda length: st.lists(
        st.lists(st.integers(0, 3), min_size=length, max_size=length),
        min_size=1, max_size=8))


class TestPrefixScan:
    @given(read_matrix, hash_specs)
    @settings(max_examples=60)
    def test_matches_naive(self, rows, spec):
        codes = np.array(rows, dtype=np.uint8)
        batch_result = prefix_fingerprints_batch(codes, spec)
        for row_index in range(codes.shape[0]):
            expected = naive_prefix_fingerprints(codes[row_index], spec)
            assert np.array_equal(batch_result[row_index], expected)

    def test_paper_read_shape(self):
        """The worked example's read (length 10) runs through the scan."""
        codes = encode("GATACCAGTA")[None, :]
        spec = HashSpec(5, 13)
        result = prefix_fingerprints_batch(codes, spec)
        assert result.shape == (1, 10)
        assert int(result[0, 0]) == int(codes[0, 0]) % 13
        assert int(result[0, -1]) == spec.fingerprint(codes[0])

    def test_empty_batch(self):
        out = prefix_fingerprints_batch(np.empty((0, 5), dtype=np.uint8),
                                        HashSpec(5, 13))
        assert out.shape == (0, 5)

    def test_rejects_1d(self):
        with pytest.raises(ConfigError):
            prefix_fingerprints_batch(np.zeros(5, dtype=np.uint8), HashSpec(5, 13))


class TestSuffixScan:
    @given(read_matrix, hash_specs)
    @settings(max_examples=60)
    def test_matches_naive(self, rows, spec):
        codes = np.array(rows, dtype=np.uint8)
        prefixes = prefix_fingerprints_batch(codes, spec)
        suffixes = suffix_fingerprints_batch(prefixes, spec)
        for row_index in range(codes.shape[0]):
            expected = naive_suffix_fingerprints(codes[row_index], spec)
            assert np.array_equal(suffixes[row_index], expected)

    def test_position_zero_is_whole_read(self):
        codes = encode("ACGTACGT")[None, :]
        spec = HashSpec.lane(0)
        prefixes = prefix_fingerprints_batch(codes, spec)
        suffixes = suffix_fingerprints_batch(prefixes, spec)
        assert suffixes[0, 0] == prefixes[0, -1]


class TestOverlapProperty:
    @given(st.text(alphabet="ACGT", min_size=4, max_size=60),
           st.text(alphabet="ACGT", min_size=4, max_size=60),
           st.integers(1, 30), hash_specs)
    @settings(max_examples=60)
    def test_suffix_prefix_equality_iff_strings_match(self, a, b, length, spec):
        """The invariant the whole pipeline rests on: the l-suffix
        fingerprint of A equals the l-prefix fingerprint of B whenever the
        strings match (and, for these primes, collisions are vanishingly
        rare the other way)."""
        length = min(length, len(a), len(b))
        codes_a, codes_b = encode(a)[None, :], encode(b)[None, :]
        suffix_fp = suffix_fingerprints_batch(
            prefix_fingerprints_batch(codes_a, spec), spec)[0, len(a) - length]
        prefix_fp = prefix_fingerprints_batch(codes_b, spec)[0, length - 1]
        if a[len(a) - length:] == b[:length]:
            assert suffix_fp == prefix_fp

"""Configuration: memory presets, scaling, block resolution, validation."""

import pytest

from repro.config import AssemblyConfig, MemoryConfig
from repro.errors import ConfigError
from repro.units import parse_size


class TestMemoryConfig:
    def test_presets_match_paper_testbeds(self):
        qb2 = MemoryConfig.preset("qb2")
        assert qb2.host_bytes == parse_size("128 GB")
        assert qb2.device_bytes == parse_size("12 GB")
        supermic = MemoryConfig.preset("supermic")
        assert supermic.host_bytes == parse_size("64 GB")
        assert supermic.device_bytes == parse_size("6 GB")

    def test_preset_unknown(self):
        with pytest.raises(ConfigError):
            MemoryConfig.preset("dgx")

    def test_scaled_preserves_ratio(self):
        base = MemoryConfig.preset("qb2")
        scaled = base.scaled(1e-4)
        assert scaled.host_bytes == int(base.host_bytes * 1e-4)
        assert scaled.device_bytes == int(base.device_bytes * 1e-4)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            MemoryConfig.preset("qb2").scaled(0)

    def test_pairs_derivation(self):
        memory = MemoryConfig(1000, 100, buffer_fraction=0.5)
        assert memory.host_pairs(10) == 50
        assert memory.device_pairs(10) == 5

    def test_validation(self):
        with pytest.raises(ConfigError):
            MemoryConfig(0, 1)
        with pytest.raises(ConfigError):
            MemoryConfig(100, 200)  # device > host
        with pytest.raises(ConfigError):
            MemoryConfig(100, 10, buffer_fraction=0.0)

    def test_paper_pass_count_calibration(self):
        """The calibration DESIGN.md relies on: a 2.5 G-record partition of
        20-byte records sorts in one host block at 128 GB but not at 64 GB."""
        from repro.extmem.sort import HOST_SORT_FOOTPRINT

        partition_records = 2 * 1_247_518_392
        for preset, fits in (("qb2", True), ("supermic", False)):
            memory = MemoryConfig.preset(preset)
            host_block = memory.host_pairs(20) // HOST_SORT_FOOTPRINT
            assert (host_block >= partition_records) is fits


class TestAssemblyConfig:
    def test_defaults_valid(self):
        config = AssemblyConfig()
        assert config.min_overlap >= 1
        assert config.fingerprint_lanes in (1, 2)

    @pytest.mark.parametrize("kwargs", [
        {"min_overlap": 0},
        {"fingerprint_lanes": 3},
        {"map_batch_reads": -1},
        {"host_block_pairs": -5},
        {"merge_fanout": 1},
        {"merge_fanout": -2},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            AssemblyConfig(**kwargs)

    def test_merge_fanout_defaults_pairwise(self):
        assert AssemblyConfig().merge_fanout == 2
        assert AssemblyConfig().resolved_fanout(20) == 2

    def test_merge_fanout_auto_derives_from_budgets(self):
        from repro.extmem.sort import derive_fanout

        config = AssemblyConfig(merge_fanout=0)
        m_h, m_d = config.resolved_blocks(20)
        assert config.resolved_fanout(20) == derive_fanout(m_h, m_d) >= 2
        assert AssemblyConfig(merge_fanout=8).resolved_fanout(20) == 8

    def test_resolved_blocks_defaults_from_memory(self):
        config = AssemblyConfig(memory=MemoryConfig(10_000, 1_000,
                                                    buffer_fraction=0.5))
        m_h, m_d = config.resolved_blocks(10)
        assert m_h == 500 and m_d == 50

    def test_resolved_blocks_overrides(self):
        config = AssemblyConfig(host_block_pairs=1000, device_block_pairs=100)
        assert config.resolved_blocks(20) == (1000, 100)

    def test_device_block_clamped_to_host(self):
        config = AssemblyConfig(host_block_pairs=10, device_block_pairs=100)
        m_h, m_d = config.resolved_blocks(20)
        assert m_d <= m_h

    def test_with_memory(self):
        config = AssemblyConfig()
        new = config.with_memory(MemoryConfig.preset("qb2"))
        assert new.memory.name == "qb2"
        assert new.min_overlap == config.min_overlap

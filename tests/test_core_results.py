"""AssemblyResult surface: FASTA export, stats filters, phase access."""

import pytest

from repro import Assembler, AssemblyConfig
from repro.seq.fastq import read_fasta


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    from repro.seq.datasets import tiny_dataset

    root = tmp_path_factory.mktemp("results")
    md, _ = tiny_dataset(root, genome_length=1500, read_length=50,
                         coverage=15.0, min_overlap=25, seed=81)
    return Assembler(AssemblyConfig(min_overlap=25)).assemble(md.store_path)


class TestFastaExport:
    def test_roundtrip(self, result, tmp_path):
        path = tmp_path / "contigs.fasta"
        written = result.write_fasta(path)
        records = list(read_fasta(path))
        assert len(records) == written == result.contigs.n_contigs
        name, sequence = records[0]
        assert name.startswith("contig.0")
        assert f"length={len(sequence)}" in name

    def test_min_length_filter(self, result, tmp_path):
        path = tmp_path / "long.fasta"
        written = result.write_fasta(path, min_length=100)
        lengths = result.contig_lengths()
        assert written == int((lengths >= 100).sum())
        for _, sequence in read_fasta(path):
            assert len(sequence) >= 100

    def test_contig_strings_match_lengths(self, result):
        strings = list(result.contig_strings())
        assert [len(s) for s in strings] == result.contig_lengths().tolist()


class TestStatsAndPhases:
    def test_stats_min_length(self, result):
        all_stats = result.stats()
        long_stats = result.stats(min_length=100)
        assert long_stats["n_contigs"] <= all_stats["n_contigs"]
        assert long_stats["n50"] >= all_stats["n50"]

    def test_phase_seconds_keys(self, result):
        wall = result.phase_seconds()
        sim = result.phase_seconds(simulated=True)
        assert set(wall) == set(sim) == {"load", "map", "sort", "reduce",
                                         "compress"}
        assert all(v >= 0 for v in wall.values())

    def test_paths_align_with_contigs(self, result):
        assert result.paths is not None
        assert result.paths.n_paths == result.contigs.n_contigs
        assert result.paths.contig_lengths().tolist() \
            == result.contig_lengths().tolist()

    def test_contigset_iteration(self, result):
        pieces = list(result.contigs)
        assert len(pieces) == result.contigs.n_contigs
        assert pieces[0].shape[0] == result.contig_lengths()[0]

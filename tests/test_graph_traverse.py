"""Path traversal, dedup, and contig spelling."""

import numpy as np
import pytest

from repro.graph import (GreedyStringGraph, extract_paths, spell_contigs)
from repro.seq.alphabet import encode
from repro.seq.records import ReadBatch


def chain_graph(n_reads=5, read_length=10, overlap=6) -> GreedyStringGraph:
    """A graph whose forward vertices form one chain 0→2→4→…"""
    graph = GreedyStringGraph(n_reads, read_length)
    for i in range(n_reads - 1):
        graph.add_candidates(np.array([2 * i]), np.array([2 * i + 2]), overlap)
    return graph


class TestExtractPaths:
    def test_chain_becomes_one_path_plus_twin(self):
        graph = chain_graph()
        paths = extract_paths(graph, include_singletons=False)
        assert paths.n_paths == 2  # the chain and its reverse-complement twin
        vertices, overhangs = paths.path(0)
        forward = vertices if vertices[0] == 0 else paths.path(1)[0]
        assert forward.tolist() == [0, 2, 4, 6, 8]
        assert paths.lengths().tolist() == [5, 5]

    def test_overhangs_and_contig_lengths(self):
        graph = chain_graph(n_reads=3, read_length=10, overlap=6)
        paths = extract_paths(graph, include_singletons=False)
        # overhang 4, 4, then 10 for the last read: contig = 18 bases
        assert sorted(paths.contig_lengths().tolist()) == [18, 18]

    def test_each_vertex_in_at_most_one_path(self):
        graph = chain_graph()
        paths = extract_paths(graph)
        assert np.unique(paths.vertices).shape[0] == paths.vertices.shape[0]

    def test_singletons_included_by_default(self):
        graph = GreedyStringGraph(3, 10)  # no edges at all
        paths = extract_paths(graph)
        assert paths.n_paths == 6  # every oriented read alone
        assert extract_paths(graph, include_singletons=False).n_paths == 0

    def test_empty_graph(self):
        paths = extract_paths(GreedyStringGraph(0, 10))
        assert paths.n_paths == 0
        assert paths.deduplicated().n_paths == 0


class TestDedup:
    def test_halves_path_count(self):
        graph = chain_graph()
        paths = extract_paths(graph, include_singletons=False)
        deduped = paths.deduplicated()
        assert deduped.n_paths == 1

    def test_singleton_dedup_keeps_forward(self):
        graph = GreedyStringGraph(2, 10)
        deduped = extract_paths(graph).deduplicated()
        assert deduped.n_paths == 2
        assert all(v % 2 == 0 for v in deduped.vertices)

    def test_twins_spell_reverse_complements(self):
        reads = ["AAACCCGGGT", "ACCCGGGTTA"]  # r0 suffix 8 == r1 prefix 8
        batch = ReadBatch.from_strings(reads)
        oriented = np.empty((4, 10), dtype=np.uint8)
        oriented[0::2] = batch.codes
        oriented[1::2] = batch.reverse_complements().codes
        graph = GreedyStringGraph(2, 10)
        graph.add_candidates(np.array([0]), np.array([2]), 8)
        paths = extract_paths(graph, include_singletons=False)
        contigs = spell_contigs(paths, oriented)
        texts = {"".join("ACGT"[c] for c in codes) for codes in contigs}
        from repro.seq.alphabet import reverse_complement_str
        assert len(texts) == 2
        a, b = sorted(texts)
        assert reverse_complement_str(a) == b or reverse_complement_str(b) == a


class TestSpellContigs:
    def test_known_chain(self):
        # r0=ABCDEFGHIJ style: build from a genome substring
        genome = encode("ACGTTGCAACGGTTAACC")
        reads = [genome[i:i + 10] for i in (0, 4, 8)]
        batch = ReadBatch(np.stack(reads))
        oriented = np.empty((6, 10), dtype=np.uint8)
        oriented[0::2] = batch.codes
        oriented[1::2] = batch.reverse_complements().codes
        graph = GreedyStringGraph(3, 10)
        graph.add_candidates(np.array([0]), np.array([2]), 6)
        graph.add_candidates(np.array([2]), np.array([4]), 6)
        paths = extract_paths(graph, include_singletons=False).deduplicated()
        contigs = spell_contigs(paths, oriented)
        assert contigs.n_contigs == 1
        spelled = contigs.contig_codes(0)
        assert np.array_equal(spelled, genome) or np.array_equal(
            spelled, encode("ACGTTGCAACGGTTAACC"))

    def test_empty(self):
        graph = GreedyStringGraph(0, 10)
        paths = extract_paths(graph)
        contigs = spell_contigs(paths, np.empty((0, 10), dtype=np.uint8))
        assert contigs.n_contigs == 0

    def test_rejects_bad_matrix(self):
        from repro.errors import ConfigError
        graph = GreedyStringGraph(1, 10)
        paths = extract_paths(graph)
        with pytest.raises(ConfigError):
            spell_contigs(paths, np.zeros(10, dtype=np.uint8))

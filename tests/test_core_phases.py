"""Individual pipeline phases: load, map, sort, reduce, compress."""

import numpy as np
import pytest

from repro.config import AssemblyConfig
from repro.core.context import RunContext
from repro.core.load_phase import run_load
from repro.core.map_phase import overlap_lengths, run_map
from repro.core.reduce_phase import run_reduce
from repro.core.sort_phase import run_sort
from repro.errors import ConfigError, DatasetError
from repro.extmem.records import KEY_FIELD, VAL_FIELD
from repro.fingerprint import FingerprintScheme
from repro.seq.fastq import write_fastq


@pytest.fixture()
def ctx(tmp_path, laptop_config):
    context = RunContext(laptop_config, workdir=tmp_path / "work")
    yield context
    context.cleanup()


class TestLoad:
    def test_from_packed_store(self, ctx, tiny_md):
        store = run_load(ctx, tiny_md.store_path)
        assert store.n_reads == tiny_md.n_reads
        assert store.path.parent == ctx.workdir
        store.close()

    def test_from_fastq(self, ctx, tmp_path):
        path = tmp_path / "in.fastq"
        write_fastq(path, [("r0", "ACGTACGT", "I" * 8), ("r1", "TTTTACGT", "I" * 8)])
        store = run_load(ctx, path)
        assert store.n_reads == 2 and store.read_length == 8
        assert store.read_slice(0, 1).strings() == ["ACGTACGT"]
        store.close()

    def test_missing_input(self, ctx, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            run_load(ctx, tmp_path / "nope.fastq")

    def test_empty_input(self, ctx, tmp_path):
        path = tmp_path / "empty.fastq"
        path.write_text("")
        with pytest.raises(DatasetError, match="no reads"):
            run_load(ctx, path)

    def test_io_accounted(self, ctx, tiny_md):
        store = run_load(ctx, tiny_md.store_path)
        store.close()
        assert ctx.accountant.read_bytes > 0
        assert ctx.accountant.write_bytes > 0


class TestMap:
    def test_partition_inventory(self, ctx, tiny_md):
        store = run_load(ctx, tiny_md.store_path)
        partitions, report = run_map(ctx, store)
        lengths = overlap_lengths(ctx, store.read_length)
        assert partitions.lengths() == sorted(lengths)
        # l_max is absent (self-loop partition dropped)
        assert store.read_length not in partitions.lengths()
        expected = 2 * 2 * store.n_reads * len(lengths)
        assert report.tuples_written == expected
        for length in lengths:
            assert partitions.records_in("S", length) == 2 * store.n_reads
            assert partitions.records_in("P", length) == 2 * store.n_reads
        store.close()

    def test_partition_contents_match_scheme(self, ctx, tiny_md):
        store = run_load(ctx, tiny_md.store_path)
        partitions, _ = run_map(ctx, store)
        scheme = ctx.scheme
        length = ctx.config.min_overlap + 2
        with partitions.open_run("S", length) as reader:
            records = reader.read_all()
        batch = store.read_slice(0, store.n_reads)
        prefix_keys, suffix_keys = scheme.key_matrices(batch.codes)
        # forward-orientation records (even vertex ids) for this length
        forward = records[records[VAL_FIELD] % 2 == 0]
        read_ids = (forward[VAL_FIELD] >> 1).astype(np.int64)
        expected = suffix_keys[0][read_ids, store.read_length - length]
        assert np.array_equal(forward[KEY_FIELD], expected)
        store.close()

    def test_min_overlap_validation(self, tmp_path, tiny_md):
        config = AssemblyConfig(min_overlap=500)
        context = RunContext(config, workdir=tmp_path / "w2")
        store = run_load(context, tiny_md.store_path)
        with pytest.raises(ConfigError, match="min_overlap"):
            run_map(context, store)
        store.close()
        context.cleanup()

    def test_read_range_restricts(self, ctx, tiny_md):
        store = run_load(ctx, tiny_md.store_path)
        partitions, report = run_map(ctx, store, read_range=(10, 25))
        assert report.n_reads == 15
        assert partitions.records_in("S", ctx.config.min_overlap) == 2 * 15
        store.close()

    def test_vertex_encoding(self, ctx, tiny_md):
        store = run_load(ctx, tiny_md.store_path)
        partitions, _ = run_map(ctx, store)
        with partitions.open_run("P", ctx.config.min_overlap) as reader:
            vertices = reader.read_all()[VAL_FIELD]
        assert vertices.max() == 2 * store.n_reads - 1
        assert np.count_nonzero(vertices % 2 == 0) == store.n_reads
        store.close()


class TestSortPhase:
    def test_all_partitions_sorted(self, ctx, tiny_md):
        store = run_load(ctx, tiny_md.store_path)
        partitions, _ = run_map(ctx, store)
        report = run_sort(ctx, partitions)
        assert report.total_records == 4 * store.n_reads * \
            len(overlap_lengths(ctx, store.read_length))
        for length in partitions.lengths():
            for side in ("S", "P"):
                assert not partitions.path(side, length).exists()
                with partitions.open_run(side, length, sorted_run=True) as reader:
                    keys = reader.read_all()[KEY_FIELD]
                assert (np.diff(keys.astype(np.int64)) >= np.int64(0)).all() or \
                    (np.sort(keys) == keys).all()
        store.close()


class TestReduce:
    def test_zero_false_positives(self, ctx, tiny_md, tiny_batch):
        from repro.baselines import exact_overlaps

        store = run_load(ctx, tiny_md.store_path)
        partitions, _ = run_map(ctx, store)
        run_sort(ctx, partitions)
        graph, report = run_reduce(ctx, partitions, store)
        graph.check_invariants()
        truth = set(exact_overlaps(tiny_batch, ctx.config.min_overlap))
        sources, targets, overlaps = graph.edge_list()
        for edge in zip(sources.tolist(), targets.tolist(), overlaps.tolist()):
            assert tuple(edge) in truth
        # every true overlap was seen as a candidate (recall check)
        assert report.candidates == len(truth)
        store.close()

    def test_edges_processed_longest_first(self, ctx, tiny_md):
        store = run_load(ctx, tiny_md.store_path)
        partitions, _ = run_map(ctx, store)
        run_sort(ctx, partitions)
        _, report = run_reduce(ctx, partitions, store)
        lengths = list(report.per_length_edges)
        assert lengths == sorted(lengths, reverse=True)
        store.close()

"""Assembly service: fairness, admission, batching, single-flight, telemetry."""

from __future__ import annotations

import pytest

from repro.config import AssemblyConfig, MemoryConfig, ServiceConfig
from repro.errors import AdmissionError, ConfigError
from repro.seq.simulate import ReadSimulator, simulate_genome
from repro.service import AssemblyService, JobQueue, JobSpec
from repro.telemetry import PhaseStats, Telemetry


def _write_reads(path, seed, *, genome_length=500, read_length=40,
                 coverage=5.0):
    genome = simulate_genome(genome_length, seed=seed)
    ReadSimulator(genome, read_length, coverage, seed=seed).to_fastq(path)
    return path


def _job_config(host=32 << 20, device=4 << 20):
    return AssemblyConfig(min_overlap=20,
                          memory=MemoryConfig(host, device, name="svc-test"))


@pytest.fixture()
def sources(tmp_path):
    """Four distinct tiny FASTQ inputs (distinct = no single-flight)."""
    return [_write_reads(tmp_path / f"reads{i}.fastq", seed=100 + i)
            for i in range(4)]


def _service(tmp_path, **overrides):
    defaults = dict(workdir=str(tmp_path / "svc"),
                    host_budget_bytes=256 << 20,
                    device_budget_bytes=32 << 20)
    defaults.update(overrides)
    return AssemblyService(ServiceConfig(**defaults))


# -- ServiceConfig validation --------------------------------------------------


@pytest.mark.parametrize("kwargs", [
    {"max_parallel": 0},
    {"host_budget_bytes": 0},
    {"device_budget_bytes": -1},
    {"cache_bytes": 0},
    {"batch_max_bytes": -1},
    {"batch_max_jobs": 0},
    {"tenant_weights": {"a": 0.0}},
])
def test_service_config_rejects_bad_knobs(kwargs):
    with pytest.raises(ConfigError):
        ServiceConfig(**kwargs)


def test_tenant_weight_defaults_to_one():
    config = ServiceConfig(tenant_weights={"vip": 3.0})
    assert config.weight("vip") == 3.0
    assert config.weight("anyone-else") == 1.0


# -- telemetry namespacing (the concurrent-job collision fix) ------------------


def test_absorb_namespaces_keep_concurrent_jobs_apart():
    telemetry = Telemetry()
    job1 = PhaseStats("map", wall_seconds=1.0, counters={"sim_seconds": 2.0},
                      peaks={"device_bytes": 100.0})
    job2 = PhaseStats("map", wall_seconds=3.0, counters={"sim_seconds": 4.0},
                      peaks={"device_bytes": 300.0})
    telemetry.absorb(job1, namespace="job001")
    telemetry.absorb(job2, namespace="job002")
    # Without namespacing these two collide into one merged "map" row and
    # per-job attribution is lost — the bug this PR fixes.
    assert "job001/map" in telemetry and "job002/map" in telemetry
    assert "map" not in telemetry
    assert telemetry["job001/map"].wall_seconds == 1.0
    assert telemetry["job002/map"].peaks["device_bytes"] == 300.0


def test_merged_by_phase_strips_namespaces():
    telemetry = Telemetry()
    telemetry.absorb(PhaseStats("map", 1.0, {"sim_seconds": 2.0},
                                {"device_bytes": 100.0}), namespace="job001")
    telemetry.absorb(PhaseStats("map", 3.0, {"sim_seconds": 4.0},
                                {"device_bytes": 300.0}), namespace="job002")
    merged = telemetry.merged_by_phase()
    assert set(merged) == {"map"}
    assert merged["map"].wall_seconds == 4.0          # walls add
    assert merged["map"].counters["sim_seconds"] == 6.0
    assert merged["map"].peaks["device_bytes"] == 300.0  # peaks max


def test_absorb_failed_stats_stay_out_of_totals():
    telemetry = Telemetry()
    telemetry.absorb(PhaseStats("sort", 1.0, error="Boom: x"),
                     namespace="job001")
    assert "job001/sort" not in telemetry
    assert [stats.name for stats in telemetry.failed] == ["job001/sort"]


def test_service_telemetry_has_one_row_per_job_phase(tmp_path, sources):
    service = _service(tmp_path)
    config = _job_config()
    report = service.run_jobs([JobSpec("a", "t", sources[0], config),
                               JobSpec("b", "t", sources[1], config)])
    assert report.n_failed == 0
    for phase in ("load", "map", "sort", "reduce", "compress"):
        assert f"a/{phase}" in service.telemetry
        assert f"b/{phase}" in service.telemetry
    assert set(service.telemetry.merged_by_phase()) \
        == {"load", "map", "sort", "reduce", "compress"}


# -- single-flight dedup -------------------------------------------------------


def test_identical_concurrent_jobs_execute_once(tmp_path, sources):
    """N identical jobs, cache off: exactly one pipeline execution."""
    service = _service(tmp_path)  # no cache_dir: dedup alone is at work
    config = _job_config()
    n = 5
    specs = [JobSpec(f"job{i}", f"tenant{i % 2}", sources[0], config)
             for i in range(n)]
    report = service.run_jobs(specs)
    assert report.n_done == n
    assert report.counters["pipeline_runs"] == 1
    assert report.counters["singleflight_joined"] == n - 1
    leader, *followers = report.outcomes
    assert leader.executed and leader.joined is None
    payload = leader.contig_bytes()
    assert payload
    for outcome in followers:
        assert not outcome.executed and outcome.joined == "job0"
        assert outcome.contig_bytes() == payload  # byte-identical results


def test_different_configs_do_not_dedup(tmp_path, sources):
    import dataclasses

    service = _service(tmp_path)
    base = _job_config()
    specs = [JobSpec("a", "t", sources[0], base),
             JobSpec("b", "t", sources[0],
                     dataclasses.replace(base, min_overlap=25))]
    report = service.run_jobs(specs)
    assert report.counters["pipeline_runs"] == 2
    assert "singleflight_joined" not in report.counters


def test_execution_only_knobs_still_dedup(tmp_path, sources):
    """workers/trace differences cannot split single-flight identity."""
    import dataclasses

    service = _service(tmp_path)
    base = _job_config()
    variant = dataclasses.replace(base, workers=2, executor_backend="threads")
    report = service.run_jobs([JobSpec("a", "t", sources[0], base),
                               JobSpec("b", "t", sources[0], variant)])
    assert report.counters["pipeline_runs"] == 1
    assert report.counters["singleflight_joined"] == 1


def test_failed_leader_promotes_its_follower(tmp_path):
    """A dead single-flight leader's follower is promoted, not failed.

    Both jobs run a degenerate input, so the promoted follower dies too —
    but it dies on *its own* execution (with its own error chain), instead
    of inheriting the leader's failure without ever running.
    """
    missing = tmp_path / "never-written.fastq"
    missing.write_bytes(b"@r\nACGT\n+\nIIII\n")  # readable but degenerate
    service = _service(tmp_path)
    config = _job_config()
    report = service.run_jobs([JobSpec("a", "t", missing, config),
                               JobSpec("b", "t", missing, config)])
    assert report.counters["pipeline_runs"] == 2
    assert report.counters["leader_promoted"] == 1
    leader, follower = report.outcomes
    assert leader.status == "quarantined" and leader.executed
    assert follower.status == "quarantined" and follower.executed
    assert follower.promoted_from == "a" and follower.joined is None
    assert leader.attempts == 1 and follower.attempts == 1
    assert follower.error_chain  # its own attempt's error, not the leader's
    assert {entry.job_id for entry in report.quarantine} == {"a", "b"}


def test_duplicate_job_ids_rejected(tmp_path, sources):
    service = _service(tmp_path)
    config = _job_config()
    # AdmissionError subclasses ServiceError subclasses ReproError, so
    # pre-existing catch-all handlers keep working.
    with pytest.raises(AdmissionError, match="duplicate job id"):
        service.run_jobs([JobSpec("same", "t", sources[0], config),
                          JobSpec("same", "t", sources[1], config)])


# -- weighted fair queuing -----------------------------------------------------


def test_jobqueue_orders_by_served_over_weight():
    queue = JobQueue(ServiceConfig(tenant_weights={"alice": 2.0},
                                   batch_max_bytes=0))
    config = _job_config()
    for index in range(6):
        queue.push(JobSpec(f"a{index}", "alice", f"/na/{index}", config))
    for index in range(3):
        queue.push(JobSpec(f"b{index}", "bob", f"/nb/{index}", config))
    order = []
    while len(queue):
        tenant = queue.pick()
        batch = queue.take_batch(tenant)
        order.extend(spec.job_id for spec in batch)
        queue.charge(tenant, float(len(batch)))
    # Tie at 0 served breaks to "alice"; thereafter argmin(served/weight).
    assert order == ["a0", "b0", "a1", "a2", "b1", "a3", "a4", "b2", "a5"]


def test_weighted_fair_prefix_bound(tmp_path, sources):
    """Every execution prefix tracks the 2:1 weight split within one job."""
    for index in range(4, 9):
        sources.append(_write_reads(tmp_path / f"extra{index}.fastq",
                                    seed=200 + index))
    service = _service(tmp_path, batch_max_bytes=0,
                       tenant_weights={"alice": 2.0})
    config = _job_config()
    specs = []
    for index in range(6):
        specs.append(JobSpec(f"a{index}", "alice", sources[index], config))
    for index in range(3):
        specs.append(JobSpec(f"b{index}", "bob", sources[6 + index], config))
    report = service.run_jobs(specs)
    assert report.n_failed == 0
    assert len(report.execution_order) == 9
    for prefix_len in range(1, 10):
        prefix = report.execution_order[:prefix_len]
        served_a = sum(1 for job in prefix if job.startswith("a"))
        served_b = prefix_len - served_a
        # Normalized service (served/weight) may never diverge by more
        # than one job's worth while both tenants still have work queued.
        if served_a < 6 and served_b < 3:
            assert abs(served_a / 2.0 - served_b / 1.0) <= 1.0
    assert report.tenants["alice"].served_units == 6.0
    assert report.tenants["bob"].served_units == 3.0


def test_unweighted_tenants_alternate(tmp_path, sources):
    service = _service(tmp_path, batch_max_bytes=0)
    config = _job_config()
    specs = [JobSpec("a0", "alice", sources[0], config),
             JobSpec("a1", "alice", sources[1], config),
             JobSpec("b0", "bob", sources[2], config),
             JobSpec("b1", "bob", sources[3], config)]
    report = service.run_jobs(specs)
    assert report.execution_order == ["a0", "b0", "a1", "b1"]


# -- admission control ---------------------------------------------------------


def test_no_oversubscription_under_concurrency(tmp_path, sources):
    """Admitted demand never exceeds the budget even with parallel workers."""
    demand_host, demand_device = 32 << 20, 4 << 20
    service = _service(tmp_path, max_parallel=4,
                       host_budget_bytes=int(demand_host * 2.5),
                       device_budget_bytes=int(demand_device * 2.5),
                       batch_max_bytes=0)
    config = _job_config(demand_host, demand_device)
    specs = [JobSpec(f"job{i}", f"tenant{i}", src, config)
             for i, src in enumerate(sources)]
    report = service.run_jobs(specs)
    assert report.n_failed == 0
    # Budget fits 2 of the 4 demands: the pool peak proves only 2 ran at
    # once, and at least one job waited at admission.
    assert report.peak_host_bytes == 2 * demand_host
    assert report.peak_device_bytes == 2 * demand_device
    assert report.peak_host_bytes <= service.host_pool.capacity_bytes
    assert report.counters["admission_blocked"] >= 1
    assert service.host_pool.used_bytes == 0  # every grant released


def test_serial_admission_never_blocks(tmp_path, sources):
    service = _service(tmp_path, host_budget_bytes=64 << 20,
                       device_budget_bytes=8 << 20, batch_max_bytes=0)
    config = _job_config()
    specs = [JobSpec(f"job{i}", "t", src, config)
             for i, src in enumerate(sources[:2])]
    report = service.run_jobs(specs)
    assert report.n_failed == 0
    assert "admission_blocked" not in report.counters
    assert report.peak_host_bytes == 32 << 20


def test_demand_beyond_budget_fails_fast(tmp_path, sources):
    service = _service(tmp_path, host_budget_bytes=16 << 20,
                       device_budget_bytes=2 << 20)
    hungry = _job_config(64 << 20, 8 << 20)
    fits = _job_config(8 << 20, 1 << 20)
    report = service.run_jobs([JobSpec("big", "t", sources[0], hungry),
                               JobSpec("ok", "t", sources[1], fits)])
    outcomes = {o.spec.job_id: o for o in report.outcomes}
    assert outcomes["big"].status == "failed"
    assert "exceeds the service budget" in outcomes["big"].error
    assert not outcomes["big"].executed
    assert outcomes["ok"].ok
    assert report.counters["admission_rejected"] == 1


# -- batch coalescing ----------------------------------------------------------


def test_small_jobs_coalesce_into_one_batch(tmp_path, sources):
    service = _service(tmp_path, batch_max_jobs=4,
                       batch_max_bytes=10 << 20)
    config = _job_config()
    specs = [JobSpec(f"job{i}", "t", src, config)
             for i, src in enumerate(sources)]
    report = service.run_jobs(specs)
    assert report.n_failed == 0
    assert report.counters["batches_coalesced"] == 1
    assert report.counters["jobs_batched"] == 4
    assert report.execution_order == [s.job_id for s in specs]
    # One admission grant for the whole batch.
    assert report.peak_host_bytes == 32 << 20


def test_batching_respects_max_jobs(tmp_path, sources):
    service = _service(tmp_path, batch_max_jobs=2, batch_max_bytes=10 << 20)
    config = _job_config()
    report = service.run_jobs([JobSpec(f"job{i}", "t", src, config)
                               for i, src in enumerate(sources)])
    assert report.counters["batches_coalesced"] == 2
    assert report.counters["jobs_batched"] == 4


def test_large_jobs_never_batch(tmp_path, sources):
    service = _service(tmp_path, batch_max_bytes=1)  # nothing is "small"
    config = _job_config()
    report = service.run_jobs([JobSpec(f"job{i}", "t", src, config)
                               for i, src in enumerate(sources[:2])])
    assert "batches_coalesced" not in report.counters


# -- parallel execution --------------------------------------------------------


def test_parallel_results_match_serial(tmp_path, sources):
    config = _job_config()
    specs = [JobSpec(f"job{i}", f"tenant{i % 2}", src, config)
             for i, src in enumerate(sources)]
    serial = _service(tmp_path, workdir=str(tmp_path / "s1")).run_jobs(specs)
    parallel = _service(tmp_path, workdir=str(tmp_path / "s2"),
                        max_parallel=3).run_jobs(specs)
    assert serial.n_failed == 0 and parallel.n_failed == 0
    for a, b in zip(serial.outcomes, parallel.outcomes):
        assert a.contig_bytes() == b.contig_bytes()

"""Model extensions: component decomposition and multi-GPU saturation."""

import pytest

from repro.config import MemoryConfig
from repro.model import (Workload, model_distributed_seconds,
                         model_multi_gpu_seconds, model_phase_components,
                         model_phase_seconds)
from repro.seq.datasets import get_dataset

SUPERMIC = MemoryConfig.preset("supermic")


@pytest.fixture(scope="module")
def hgenome() -> Workload:
    return Workload.from_spec(get_dataset("hgenome_sim"))


class TestComponents:
    def test_components_sum_to_phases(self, hgenome):
        components = model_phase_components(hgenome, SUPERMIC, "K20X")
        phases = model_phase_seconds(hgenome, SUPERMIC, "K20X")
        for phase, parts in components.items():
            assert sum(parts.values()) == pytest.approx(phases[phase])

    def test_disk_dominates(self, hgenome):
        """The paper's central claim: the pipeline is I/O-bound."""
        components = model_phase_components(hgenome, SUPERMIC, "K20X")
        disk = sum(parts["disk"] for parts in components.values())
        device = sum(parts["device"] for parts in components.values())
        assert disk > 3 * device

    def test_load_compress_have_no_device_work(self, hgenome):
        components = model_phase_components(hgenome, SUPERMIC, "K20X")
        assert components["load"]["device"] == 0.0
        assert components["compress"]["device"] == 0.0


class TestMultiGPU:
    def test_monotone_but_saturating(self, hgenome):
        totals = [model_multi_gpu_seconds(hgenome, SUPERMIC, "K20X", n)["total"]
                  for n in (1, 2, 4, 8, 64)]
        assert totals == sorted(totals, reverse=True)
        # saturation: 64 GPUs gain little beyond 8
        assert totals[4] > 0.95 * totals[3]

    def test_one_gpu_matches_single_node_model(self, hgenome):
        single = model_phase_seconds(hgenome, SUPERMIC, "K20X")["total"]
        multi = model_multi_gpu_seconds(hgenome, SUPERMIC, "K20X", 1)["total"]
        assert multi == pytest.approx(single)

    def test_floor_is_disk_time(self, hgenome):
        components = model_phase_components(hgenome, SUPERMIC, "K20X")
        disk = sum(parts["disk"] for parts in components.values())
        many = model_multi_gpu_seconds(hgenome, SUPERMIC, "K20X", 10_000)["total"]
        assert many == pytest.approx(disk, rel=0.02)

    def test_nodes_beat_gpus(self, hgenome):
        """Scale-out divides the disk stream; scale-up does not (§III.E)."""
        gpus8 = model_multi_gpu_seconds(hgenome, SUPERMIC, "K20X", 8)["total"]
        nodes8 = model_distributed_seconds(hgenome, SUPERMIC, "K20X", 8)["total"]
        assert nodes8 < 0.5 * gpus8

    def test_validation(self, hgenome):
        with pytest.raises(ValueError):
            model_multi_gpu_seconds(hgenome, SUPERMIC, "K20X", 0)

"""Paired-end scaffolding: placements, links, chaining, end-to-end."""

import numpy as np
import pytest

from repro import Assembler, AssemblyConfig
from repro.errors import ConfigError, DatasetError
from repro.graph import GreedyStringGraph, extract_paths
from repro.scaffold import (bundle_links, infer_links, place_reads,
                            scaffold_assembly)
from repro.seq.alphabet import decode, reverse_complement
from repro.seq.packing import PackedReadStore
from repro.seq.simulate import PairedReadSimulator, simulate_genome


class TestPairedSimulator:
    def test_layout_and_counts(self):
        genome = simulate_genome(5000, seed=1)
        sim = PairedReadSimulator(genome=genome, read_length=50,
                                  coverage=10.0, insert_size=300, seed=2)
        batch, n_pairs = sim.all_reads()
        assert batch.n_reads == 2 * n_pairs
        assert n_pairs == sim.n_pairs

    def test_mates_bracket_an_insert(self):
        genome = simulate_genome(2000, seed=3)
        sim = PairedReadSimulator(genome=genome, read_length=40,
                                  coverage=5.0, insert_size=200, seed=4)
        batch, n_pairs = sim.all_reads()
        text = decode(genome)
        for pair in range(min(20, n_pairs)):
            mate1 = decode(batch.codes[pair])
            mate2_fwd = decode(reverse_complement(batch.codes[n_pairs + pair]))
            p1 = text.find(mate1)
            p2 = text.find(mate2_fwd)
            assert p1 != -1 and p2 != -1
            assert p2 + 40 - p1 == 200  # exact insert (std = 0)

    def test_validation(self):
        genome = simulate_genome(500, seed=5)
        with pytest.raises(DatasetError):
            PairedReadSimulator(genome=genome, read_length=50, coverage=5.0,
                                insert_size=60)
        with pytest.raises(DatasetError):
            PairedReadSimulator(genome=genome, read_length=50, coverage=5.0,
                                insert_size=600)


class TestPlacement:
    def test_chain_placement(self):
        graph = GreedyStringGraph(3, 10)
        graph.add_candidates(np.array([0]), np.array([2]), 6)
        graph.add_candidates(np.array([2]), np.array([4]), 6)
        paths = extract_paths(graph).deduplicated()
        placements = place_reads(paths, 3)
        assert placements.n_placed == 3
        chain = [int(placements.contig[r]) for r in range(3)]
        assert len(set(chain)) == 1  # one contig
        offsets = [int(placements.offset[r]) for r in range(3)]
        assert sorted(offsets) == [0, 4, 8]

    def test_rc_vertex_marks_reverse(self):
        graph = GreedyStringGraph(2, 10)  # singletons only
        paths = extract_paths(graph).deduplicated()
        placements = place_reads(paths, 2)
        assert placements.forward.all()  # dedup keeps forward singletons

    def test_duplicate_read_rejected(self):
        graph = GreedyStringGraph(2, 10)
        paths = extract_paths(graph)  # NOT deduplicated: both orientations
        with pytest.raises(ConfigError, match="deduplicated"):
            place_reads(paths, 2)


class TestLinks:
    def _placements(self, contig, offset, forward):
        from repro.scaffold.placement import ReadPlacements

        return ReadPlacements(np.array(contig), np.array(offset),
                              np.array(forward))

    def test_forward_forward_gap(self):
        # mate1 fwd at offset 10 in contig0 (len 100); mate2 (stored rc) at
        # offset 5 in contig1 (len 80), genome-forward with the contig.
        placements = self._placements([0, 1], [10, 5], [True, False])
        links = infer_links(placements, np.array([100, 80]), 1, 20, 300)
        (c1, f1, c2, f2, gap), = links
        assert (c1, f1, c2, f2) == (0, False, 1, False)
        # tail1 = 100-10 = 90; head2 = 5+20 = 25; gap = 300-90-25 = 185
        assert gap == 185

    def test_flipped_contig(self):
        # mate1 stored rc relative to contig0 -> contig0 must be flipped.
        placements = self._placements([0, 1], [70, 5], [False, False])
        links = infer_links(placements, np.array([100, 80]), 1, 20, 300)
        (c1, f1, c2, f2, gap), = links
        assert f1 is True and f2 is False
        # p1 = 100-(70+20)=10 -> same geometry as above
        assert gap == 185

    def test_same_contig_pairs_skipped(self):
        placements = self._placements([0, 0], [10, 200], [True, False])
        assert infer_links(placements, np.array([400]), 1, 20, 300) == []

    def test_unplaced_mate_skipped(self):
        placements = self._placements([0, -1], [10, 0], [True, False])
        assert infer_links(placements, np.array([100]), 1, 20, 300) == []


class TestBundling:
    def test_support_threshold(self):
        raw = [(0, False, 1, False, 100)] * 3 + [(2, False, 3, False, 50)]
        bundled = bundle_links(raw, min_support=2)
        assert len(bundled) == 1
        assert bundled[0].support == 3
        assert bundled[0].gap == 100

    def test_complement_links_merge(self):
        forward = (0, False, 1, False, 100)
        mirrored = (1, True, 0, True, 100)  # the same adjacency, other strand
        bundled = bundle_links([forward, mirrored], min_support=2)
        assert len(bundled) == 1 and bundled[0].support == 2

    def test_gap_spread_filter(self):
        raw = [(0, False, 1, False, 0), (0, False, 1, False, 99_999)]
        assert bundle_links(raw, min_support=2) == []

    def test_sorted_by_support(self):
        raw = [(0, False, 1, False, 10)] * 2 + [(2, False, 3, False, 10)] * 5
        bundled = bundle_links(raw, min_support=2)
        assert [b.support for b in bundled] == [5, 2]


@pytest.fixture(scope="module")
def scaffolded(tmp_path_factory):
    # Coverage 10 leaves the assembly genuinely fragmented (at higher
    # coverage the canonical-tie-break greedy graph already assembles most
    # of the genome into one contig, leaving nothing to scaffold).
    root = tmp_path_factory.mktemp("scaffold")
    genome = simulate_genome(20_000, seed=33)
    sim = PairedReadSimulator(genome=genome, read_length=60, coverage=10.0,
                              insert_size=400, insert_std=10.0, seed=34)
    batch, n_pairs = sim.all_reads()
    store_path = root / "pe.lsgr"
    with PackedReadStore.create(store_path, 60) as store:
        store.append_batch(batch)
    result = Assembler(AssemblyConfig(min_overlap=30)).assemble(store_path)
    scaffolds = scaffold_assembly(result.contigs, result.paths,
                                  n_pairs=n_pairs, read_length=60,
                                  insert_size=400, min_support=3)
    return genome, result, scaffolds


class TestEndToEnd:
    def test_contiguity_improves(self, scaffolded):
        _, result, scaffolds = scaffolded
        assert scaffolds.stats()["n50"] > 3 * result.stats()["n50"]
        assert scaffolds.n_scaffolded_contigs >= 10

    def test_scaffold_pieces_in_genome_order(self, scaffolded):
        """Split each multi-contig scaffold at its N gaps: the pieces must
        occur in the genome in consistent order on one strand."""
        genome, _, scaffolds = scaffolded
        forward = decode(genome)
        backward = decode(reverse_complement(genome))
        checked = pieces_checked = 0
        for sequence in scaffolds.sequences:
            pieces = [p for p in sequence.split("N") if len(p) >= 60]
            if len(pieces) < 3:
                continue
            located = False
            for text in (forward, backward):
                positions = [text.find(piece) for piece in pieces]
                if all(p != -1 for p in positions):
                    assert positions == sorted(positions), "order violated"
                    located = True
                    checked += 1
                    pieces_checked += len(pieces)
                    break
            assert located, "scaffold mixes strands (misjoin)"
        # At least one substantial chain must have been validated; at low
        # coverage the scaffolder may fuse everything into a single long
        # chain, so count chained pieces rather than chains.
        assert checked >= 1
        assert pieces_checked >= 8

    def test_gap_estimates_close_to_truth(self, scaffolded):
        genome, _, scaffolds = scaffolded
        forward = decode(genome)
        for sequence in scaffolds.sequences:
            pieces = sequence.split("N")
            pieces = [p for p in pieces if p]
            if len(pieces) != 2 or any(len(p) < 60 for p in pieces):
                continue
            p1, p2 = (forward.find(piece) for piece in pieces)
            if p1 == -1 or p2 == -1 or p2 < p1:
                continue
            true_gap = p2 - (p1 + len(pieces[0]))
            rendered_gap = len(sequence) - sum(len(p) for p in pieces)
            assert abs(rendered_gap - true_gap) < 80  # ~insert_std * few
            return
        pytest.skip("no two-piece forward scaffold in this run")

"""Quality metrics and comparison-table rendering."""

import numpy as np
import pytest

from repro.analysis import ComparisonTable, contig_accuracy, format_cell, genome_fraction
from repro.graph.contigs import ContigSet
from repro.seq.alphabet import encode, reverse_complement


def contig_set(*texts: str) -> ContigSet:
    codes = [encode(t) for t in texts]
    offsets = np.concatenate(([0], np.cumsum([c.shape[0] for c in codes])))
    flat = np.concatenate(codes) if codes else np.empty(0, dtype=np.uint8)
    return ContigSet(flat, offsets.astype(np.int64))


GENOME = encode("ACGTTGCAACGGTTAACCGTCGAT")


class TestContigAccuracy:
    def test_all_correct(self):
        contigs = contig_set("ACGTTGCA", "GGTTAACC")
        result = contig_accuracy(contigs, GENOME)
        assert result["accuracy"] == 1.0 and result["incorrect"] == 0

    def test_rc_counts_as_correct(self):
        rc_piece = "".join("ACGT"[c] for c in reverse_complement(GENOME[:10]))
        result = contig_accuracy(contig_set(rc_piece), GENOME)
        assert result["correct"] == 1

    def test_wrong_contig_detected(self):
        result = contig_accuracy(contig_set("ACGTTGCA", "AAAAAAAAAAA"), GENOME)
        assert result["incorrect"] == 1
        assert result["accuracy"] == 0.5

    def test_min_length_filter(self):
        result = contig_accuracy(contig_set("AC", "ACGTTGCA"), GENOME,
                                 min_length=5)
        assert result["checked"] == 1


class TestGenomeFraction:
    def test_full_cover(self):
        text = "".join("ACGT"[c] for c in GENOME)
        assert genome_fraction(contig_set(text), GENOME) == 1.0

    def test_partial(self):
        fraction = genome_fraction(contig_set("ACGTTGCA"), GENOME)
        assert fraction == pytest.approx(8 / 24)

    def test_rc_contig_projects_back(self):
        rc_piece = "".join("ACGT"[c] for c in reverse_complement(GENOME[4:14]))
        assert genome_fraction(contig_set(rc_piece), GENOME) \
            == pytest.approx(10 / 24)

    def test_wrong_contig_contributes_nothing(self):
        assert genome_fraction(contig_set("AAAAAAAAAAAAAAA"), GENOME) == 0.0

    def test_overlapping_contigs_not_double_counted(self):
        fraction = genome_fraction(contig_set("ACGTTGCA", "GTTGCAAC"), GENOME)
        assert fraction == pytest.approx(10 / 24)


class TestReporting:
    def test_format_cell(self):
        assert format_cell(None) == "OOM"
        assert format_cell(90, "duration") == "1m 30s"
        assert format_cell(12e9, "size") == "12.00 GB"
        assert format_cell(2.345, "ratio") == "2.35x"
        assert format_cell("plain") == "plain"

    def test_render_alignment_and_notes(self):
        table = ComparisonTable("Table X", ["dataset", "paper", "measured"],
                                ["raw", "duration", "duration"])
        table.add_row("H.Genome", 58869, 120.5)
        table.add_row("Tiny", None, 1.0)
        table.add_note("measured at scale 2e-5")
        text = table.render()
        assert "Table X" in text
        assert "16h 21m 09s" in text
        assert "OOM" in text
        assert "note: measured" in text
        widths = {len(line) for line in text.splitlines()[1:4]}
        assert len(widths) == 1  # columns aligned

"""End-to-end pipeline behaviour."""

import numpy as np
import pytest

from repro import Assembler, AssemblyConfig, MemoryConfig
from repro.analysis import contig_accuracy, genome_fraction
from repro.core.pipeline import PHASES
from repro.graph import GreedyStringGraph, extract_paths, spell_contigs
from repro.seq.alphabet import decode


@pytest.fixture(scope="module")
def assembled(tmp_path_factory):
    from repro.seq.datasets import tiny_dataset

    root = tmp_path_factory.mktemp("e2e")
    md, batch = tiny_dataset(root, genome_length=2500, read_length=50,
                             coverage=22.0, min_overlap=25, seed=21)
    config = AssemblyConfig(min_overlap=25)
    result = Assembler(config).assemble(md.store_path)
    return md, batch, result


class TestCorrectness:
    def test_contigs_are_genome_substrings(self, assembled):
        md, _, result = assembled
        accuracy = contig_accuracy(result.contigs, md.genome())
        assert accuracy["incorrect"] == 0
        assert accuracy["checked"] == result.contigs.n_contigs

    def test_genome_mostly_recovered(self, assembled):
        md, _, result = assembled
        assert genome_fraction(result.contigs, md.genome()) > 0.95

    def test_every_read_accounted(self, assembled):
        """Deduped paths cover each read exactly once (one orientation)."""
        _, _, result = assembled
        total_overhang = int(result.contig_lengths().sum())
        assert total_overhang > 0
        assert result.n_paths == result.contigs.n_contigs

    def test_compress_matches_in_memory_speller(self, assembled, tmp_path):
        """The streaming compress phase spells exactly what spell_contigs does."""
        md, batch, result = assembled
        # rebuild the graph via a fresh pipeline-less reduce
        from repro.baselines import exact_overlaps, greedy_graph_from_overlaps

        graph = greedy_graph_from_overlaps(exact_overlaps(batch, 25),
                                           batch.n_reads, batch.read_length)
        paths = extract_paths(graph).deduplicated()
        oriented = np.empty((2 * batch.n_reads, batch.read_length), dtype=np.uint8)
        oriented[0::2] = batch.codes
        oriented[1::2] = batch.reverse_complements().codes
        reference = spell_contigs(paths, oriented)
        # Candidate ordering differs (fingerprint vs vertex order), so compare
        # aggregate quality rather than byte identity.
        assert abs(int(reference.lengths().sum())
                   - int(result.contig_lengths().sum())) \
            <= 0.1 * reference.lengths().sum()


class TestTelemetryAndBudgets:
    def test_all_phases_recorded(self, assembled):
        _, _, result = assembled
        names = [stats.name for stats in result.telemetry]
        assert names == list(PHASES)

    def test_device_budget_respected(self, assembled):
        _, _, result = assembled
        budget = result.config.memory.device_bytes
        for stats in result.telemetry:
            assert stats.peaks.get("device_bytes", 0.0) <= budget

    def test_host_budget_respected(self, assembled):
        _, _, result = assembled
        budget = result.config.memory.host_bytes
        for stats in result.telemetry:
            assert stats.peaks.get("host_bytes", 0.0) <= budget

    def test_sim_time_positive(self, assembled):
        _, _, result = assembled
        assert result.telemetry.total_sim_seconds() > 0
        assert result.phase_seconds(simulated=True)["sort"] > 0

    def test_summary_renders(self, assembled):
        _, _, result = assembled
        text = result.summary()
        assert "contigs" in text and "N50" in text


class TestVariants:
    def test_two_lane_config_identical_contig_totals(self, tmp_path):
        from repro.seq.datasets import tiny_dataset

        md, _ = tiny_dataset(tmp_path, genome_length=1000, read_length=40,
                             coverage=15.0, min_overlap=20, seed=4)
        results = {}
        for lanes in (1, 2):
            config = AssemblyConfig(min_overlap=20, fingerprint_lanes=lanes)
            results[lanes] = Assembler(config).assemble(md.store_path)
        assert results[1].reduce_report.candidates \
            == results[2].reduce_report.candidates

    def test_cramped_memory_still_correct(self, tmp_path, cramped_config):
        from repro.seq.datasets import tiny_dataset

        md, _ = tiny_dataset(tmp_path, genome_length=1000, read_length=40,
                             coverage=15.0, min_overlap=20, seed=4)
        config = AssemblyConfig(min_overlap=20,
                                host_block_pairs=cramped_config.host_block_pairs,
                                device_block_pairs=cramped_config.device_block_pairs)
        result = Assembler(config).assemble(md.store_path)
        assert result.sort_report.max_disk_passes > 1  # forced multipass
        accuracy = contig_accuracy(result.contigs, md.genome())
        assert accuracy["incorrect"] == 0

    def test_no_dedupe_doubles_contigs(self, tmp_path):
        from repro.seq.datasets import tiny_dataset

        md, _ = tiny_dataset(tmp_path, genome_length=800, read_length=40,
                             coverage=12.0, min_overlap=20, seed=6)
        base = Assembler(AssemblyConfig(min_overlap=20)).assemble(md.store_path)
        doubled = Assembler(AssemblyConfig(min_overlap=20, dedupe_contigs=False)
                            ).assemble(md.store_path)
        assert doubled.contigs.n_contigs >= 2 * base.contigs.n_contigs - 1

    def test_noisy_reads_degrade_gracefully(self, tmp_path):
        """Substitution errors break exact overlaps: fewer edges, shorter
        contigs, but never crashes or invalid output."""
        from repro.seq.datasets import tiny_dataset

        md_clean, _ = tiny_dataset(tmp_path / "c", genome_length=1000,
                                   read_length=40, coverage=15.0,
                                   min_overlap=20, seed=6)
        md_noisy, _ = tiny_dataset(tmp_path / "n", genome_length=1000,
                                   read_length=40, coverage=15.0,
                                   min_overlap=20, seed=6, error_rate=0.03)
        config = AssemblyConfig(min_overlap=20)
        clean = Assembler(config).assemble(md_clean.store_path)
        noisy = Assembler(config).assemble(md_noisy.store_path)
        assert noisy.reduce_report.edges_added < clean.reduce_report.edges_added
        assert noisy.stats()["n50"] <= clean.stats()["n50"]

    def test_workdir_kept_when_supplied(self, tmp_path):
        from repro.seq.datasets import tiny_dataset

        md, _ = tiny_dataset(tmp_path, genome_length=600, read_length=30,
                             coverage=8.0, min_overlap=15, seed=2)
        work = tmp_path / "keepme"
        Assembler(AssemblyConfig(min_overlap=15)).assemble(md.store_path,
                                                           workdir=work)
        assert (work / "reads.lsgr").exists()

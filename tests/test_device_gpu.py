"""VirtualGPU: capacity enforcement, transfer metering, record kernels."""

import numpy as np
import pytest

from repro.device import SimClock, VirtualGPU
from repro.errors import ConfigError, DeviceMemoryError
from repro.extmem.records import make_records


@pytest.fixture()
def gpu() -> VirtualGPU:
    return VirtualGPU("K40", capacity_bytes=1_000_000)


class TestTransfers:
    def test_to_device_allocates_and_charges(self, gpu):
        data = np.zeros(1000, dtype=np.uint64)
        device_array = gpu.to_device(data)
        assert gpu.pool.used_bytes == data.nbytes
        assert gpu.clock.seconds("h2d") > 0
        out = gpu.to_host(device_array)
        assert np.array_equal(out, data)
        assert gpu.clock.seconds("d2h") > 0
        device_array.free()
        assert gpu.pool.used_bytes == 0

    def test_device_copy_is_independent(self, gpu):
        data = np.zeros(10, dtype=np.uint8)
        device_array = gpu.to_device(data)
        data[0] = 7
        assert device_array.array[0] == 0

    def test_oom(self, gpu):
        with pytest.raises(DeviceMemoryError):
            gpu.to_device(np.zeros(2_000_000, dtype=np.uint8))

    def test_use_after_free(self, gpu):
        device_array = gpu.to_device(np.zeros(8, dtype=np.uint8))
        device_array.free()
        with pytest.raises(DeviceMemoryError, match="use-after-free"):
            gpu.to_host(device_array)

    def test_host_array_rejected_by_kernels(self, gpu):
        with pytest.raises(ConfigError, match="DeviceArray"):
            gpu.sort_pairs(np.zeros(4, dtype=np.uint64))

    def test_context_manager_frees(self, gpu):
        with gpu.to_device(np.zeros(100, dtype=np.uint8)):
            assert gpu.pool.used_bytes == 100
        assert gpu.pool.used_bytes == 0


class TestKernels:
    def test_sort_pairs(self, gpu, rng):
        keys = rng.integers(0, 1000, 500, dtype=np.uint64)
        values = np.arange(500, dtype=np.uint32)
        keys_d, values_d = gpu.to_device(keys), gpu.to_device(values)
        sorted_keys_d, sorted_values_d = gpu.sort_pairs(keys_d, values_d)
        assert np.array_equal(sorted_keys_d.array, np.sort(keys))
        assert np.array_equal(keys[sorted_values_d.array], sorted_keys_d.array)
        assert gpu.clock.seconds("kernel") > 0

    def test_sort_accounts_scratch(self, gpu, rng):
        """Radix sort needs ping-pong scratch: input alone fitting is not enough."""
        keys = rng.integers(0, 9, 50_000, dtype=np.uint64)  # 400 kB
        values = np.arange(50_000, dtype=np.uint32)         # 200 kB
        keys_d, values_d = gpu.to_device(keys), gpu.to_device(values)
        with pytest.raises(DeviceMemoryError):
            gpu.sort_pairs(keys_d, values_d)  # 600 kB in + 600 kB scratch > 1 MB

    def test_merge_pairs_requires_sorted(self, gpu):
        a = gpu.to_device(np.array([3, 1], dtype=np.uint64))
        b = gpu.to_device(np.array([2], dtype=np.uint64))
        from repro.errors import SortContractError
        with pytest.raises(SortContractError):
            gpu.merge_pairs(a, [], b, [])

    def test_bounds(self, gpu):
        haystack = gpu.to_device(np.array([1, 3, 3, 7], dtype=np.uint64))
        queries = gpu.to_device(np.array([3, 5], dtype=np.uint64))
        lower, upper = gpu.bounds(haystack, queries)
        assert lower.array.tolist() == [1, 3]
        assert upper.array.tolist() == [3, 3]

    def test_exclusive_scan_and_gather(self, gpu):
        values = gpu.to_device(np.array([2, 3, 4], dtype=np.int64))
        scanned = gpu.exclusive_scan(values)
        assert scanned.array.tolist() == [0, 2, 5]
        stencil = gpu.to_device(np.array([2, 0], dtype=np.int64))
        gathered = gpu.gather(scanned, stencil)
        assert gathered.array.tolist() == [5, 0]


class TestRecordKernels:
    def _records(self, rng, n=300):
        return make_records(rng.integers(0, 50, n, dtype=np.uint64),
                            np.arange(n, dtype=np.uint32))

    def test_sort_records_device(self, gpu, rng):
        records = self._records(rng)
        records_d = gpu.to_device(records)
        sorted_d = gpu.sort_records_device(records_d)
        keys = sorted_d.array["key"]
        assert np.array_equal(keys, np.sort(records["key"]))

    def test_merge_records_device(self, gpu, rng):
        a = self._records(rng, 100)
        b = self._records(rng, 60)
        a.sort(order="key")
        b.sort(order="key")
        merged = gpu.merge_records_device(gpu.to_device(a), gpu.to_device(b))
        assert np.array_equal(merged.array["key"],
                              np.sort(np.concatenate([a["key"], b["key"]])))

    def test_bounds_records(self, gpu, rng):
        hay = self._records(rng, 200)
        hay.sort(order="key")
        queries = self._records(rng, 50)
        lower, upper = gpu.bounds_records(gpu.to_device(hay), gpu.to_device(queries))
        counts = upper.array - lower.array
        for record, count in zip(queries, counts):
            assert count == int((hay["key"] == record["key"]).sum())

    def test_missing_key_field(self, gpu):
        raw = gpu.to_device(np.zeros(4, dtype=np.uint64))
        with pytest.raises(ConfigError, match="key field"):
            gpu.sort_records_device(raw)

    def test_merge_records_device_k(self, gpu, rng):
        runs = [self._records(rng, n) for n in (80, 50, 30, 20)]
        for run in runs:
            run.sort(order="key")
        before = gpu.clock.total_seconds
        merged = gpu.merge_records_device_k([gpu.to_device(r) for r in runs])
        expected = np.sort(np.concatenate([r["key"] for r in runs]))
        assert np.array_equal(merged.array["key"], expected)
        assert gpu.clock.total_seconds > before

    def test_merge_records_device_k_requires_sorted(self, gpu, rng):
        from repro.errors import SortContractError

        sorted_run = self._records(rng, 20)
        sorted_run.sort(order="key")
        unsorted = np.array(sorted_run[::-1])
        with pytest.raises(SortContractError):
            gpu.merge_records_device_k([gpu.to_device(sorted_run),
                                        gpu.to_device(unsorted)])

    def test_merge_records_device_k_charges_tournament_depth(self, gpu, rng):
        """Merging 4 runs costs twice the kernel time of merging 2 runs of
        the same total size (⌈log₂ 4⌉ = 2 comparison levels)."""
        halves = [self._records(rng, 60) for _ in range(2)]
        quarters = [self._records(rng, 30) for _ in range(4)]
        for run in halves + quarters:
            run.sort(order="key")
        t0 = gpu.clock.seconds("kernel")
        gpu.merge_records_device_k([gpu.to_device(r) for r in halves])
        two_way = gpu.clock.seconds("kernel") - t0
        t1 = gpu.clock.seconds("kernel")
        gpu.merge_records_device_k([gpu.to_device(r) for r in quarters])
        four_way = gpu.clock.seconds("kernel") - t1
        assert four_way == pytest.approx(2 * two_way)


class TestTimingModel:
    def test_shared_clock(self):
        clock = SimClock()
        gpu = VirtualGPU("K40", capacity_bytes=10_000, clock=clock)
        gpu.to_device(np.zeros(100, dtype=np.uint8))
        assert clock.seconds("h2d") > 0

    def test_faster_gpu_sorts_faster(self, rng):
        keys = rng.integers(0, 99, 1000, dtype=np.uint64)
        times = {}
        for name in ("K40", "V100"):
            gpu = VirtualGPU(name, capacity_bytes=10**6)
            keys_d = gpu.to_device(keys)
            gpu.sort_pairs(keys_d)
            times[name] = gpu.clock.seconds("kernel")
        assert times["V100"] < times["K40"]

    def test_default_capacity_is_spec_memory(self):
        gpu = VirtualGPU("K20X")
        assert gpu.pool.capacity_bytes == gpu.spec.mem_bytes

"""Edge cases of the pipelined executor primitives."""

import threading

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan, inject
from repro.parallel import PipelineExecutor, PrefetchingSource, WriteBehind


@pytest.fixture()
def executor():
    ex = PipelineExecutor(4)
    yield ex
    ex.shutdown()


class TestMapOrdered:
    def test_results_in_submission_order(self, executor):
        # Reverse sleep times would reorder completion; delivery must not.
        import time

        def work(i):
            time.sleep(0.002 * (8 - i))
            return i * i

        assert list(executor.map_ordered(work, range(8))) == \
            [i * i for i in range(8)]

    def test_worker_exception_propagates_with_traceback(self, executor):
        def work(i):
            if i == 3:
                raise ValueError("boom at 3")
            return i

        with pytest.raises(ValueError, match="boom at 3") as excinfo:
            list(executor.map_ordered(work, range(8)))
        # The original worker frame must be present in the chained traceback.
        frames = []
        tb = excinfo.value.__traceback__
        while tb is not None:
            frames.append(tb.tb_frame.f_code.co_name)
            tb = tb.tb_next
        assert "work" in frames

    def test_in_flight_window_is_bounded(self, executor):
        # Items are pulled on the caller thread, so at any submission point
        # pulled <= delivered + window exactly.
        window = 3
        pulled = []
        delivered = []

        def items():
            for i in range(20):
                assert len(pulled) <= len(delivered) + window
                pulled.append(i)
                yield i

        for result in executor.map_ordered(lambda x: x, items(), window=window):
            delivered.append(result)
        assert delivered == list(range(20))

    def test_serial_mode_runs_inline(self):
        executor = PipelineExecutor(1)
        main = threading.get_ident()
        threads = set(executor.map_ordered(
            lambda _: threading.get_ident(), range(4)))
        assert threads == {main}

    def test_armed_fault_plan_forces_serial(self, executor):
        main = threading.get_ident()
        with inject(FaultPlan(seed=1)):
            assert not executor.parallel
            threads = set(executor.map_ordered(
                lambda _: threading.get_ident(), range(4)))
        assert threads == {main}
        assert executor.parallel

    def test_invalid_window(self, executor):
        with pytest.raises(ConfigError):
            list(executor.map_ordered(lambda x: x, [1], window=0))


class TestPrefetch:
    def test_empty_iterator_yields_nothing(self, executor):
        assert list(executor.prefetch(iter(()))) == []

    def test_order_preserved(self, executor):
        assert list(executor.prefetch(range(100), depth=3)) == list(range(100))

    def test_producer_exception_relayed(self, executor):
        def items():
            yield 1
            raise RuntimeError("producer died")

        stream = executor.prefetch(items())
        assert next(stream) == 1
        with pytest.raises(RuntimeError, match="producer died"):
            list(stream)


class TestPrefetchingSource:
    class ArraySource:
        def __init__(self, data):
            self.data = data
            self.dtype = data.dtype
            self.pos = 0

        def read(self, n):
            out = self.data[self.pos:self.pos + n]
            self.pos += out.shape[0]
            return out

    def test_byte_equivalent_reads(self):
        data = np.arange(1000, dtype=np.uint32)
        wrapped = PrefetchingSource(self.ArraySource(data), 64, depth=2)
        parts = []
        for size in (1, 7, 300, 5, 999):  # odd sizes straddle chunk edges
            chunk = wrapped.read(size)
            assert chunk.dtype == data.dtype
            parts.append(chunk)
            if chunk.shape[0] < size:
                break
        assert np.array_equal(np.concatenate(parts), data)
        assert wrapped.read(10).shape[0] == 0

    def test_source_error_relayed(self):
        class Broken:
            dtype = np.dtype(np.uint8)

            def read(self, n):
                raise OSError("disk gone")

        wrapped = PrefetchingSource(Broken(), 4)
        with pytest.raises(OSError, match="disk gone"):
            wrapped.read(1)


class TestWriteBehind:
    def test_close_reraises_deferred_error(self):
        def write(_):
            raise OSError("disk full")

        sink = WriteBehind(write, depth=2)
        sink.put(b"x")  # the failure happens in the background
        with pytest.raises(OSError, match="disk full"):
            sink.close()

    def test_put_never_deadlocks_after_error(self):
        def write(_):
            raise OSError("disk full")

        sink = WriteBehind(write, depth=1)
        with pytest.raises(OSError, match="disk full"):
            # Depth 1: without drain-and-discard this would block forever.
            for i in range(50):
                sink.put(i)
        try:
            sink.close()  # may re-raise for the still-queued failed writes
        except OSError:
            pass
        with pytest.raises(ConfigError):
            sink.put(0)

    def test_writes_applied_in_order(self):
        out = []
        with WriteBehind(out.append, depth=2) as sink:
            for i in range(100):
                sink.put(i)
        assert out == list(range(100))

    def test_serial_mode_writes_inline(self):
        out = []
        sink = WriteBehind(out.append, serial=True)
        sink.put(1)
        assert out == [1]  # applied before close
        sink.close()

    def test_body_exception_not_masked(self):
        def write(_):
            raise OSError("deferred")

        with pytest.raises(KeyError, match="primary"):
            with WriteBehind(write) as sink:
                sink.put(1)
                raise KeyError("primary")


class TestExecutorConfig:
    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigError):
            PipelineExecutor(-2)

    def test_auto_workers(self):
        assert PipelineExecutor(0).workers >= 1

    def test_shutdown_idempotent(self, executor):
        list(executor.map_ordered(lambda x: x, range(4)))
        executor.shutdown()
        executor.shutdown()


PROBE = "repro.parallel.process_backend:_probe_task"


class TestProcessBackend:
    def test_map_tasks_runs_in_workers_in_order(self):
        import os

        ex = PipelineExecutor(2, backend="processes")
        try:
            assert ex.process_parallel
            results = list(ex.map_tasks(PROBE, ({"i": i} for i in range(8))))
        finally:
            ex.shutdown()
        assert [r["i"] for r in results] == list(range(8))
        assert all(r["pid"] != os.getpid() for r in results)

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_map_tasks_inline_without_process_backend(self, backend):
        import os

        ex = PipelineExecutor(2, backend=backend)
        try:
            assert not ex.process_parallel
            results = list(ex.map_tasks(PROBE, ({"i": i} for i in range(4))))
        finally:
            ex.shutdown()
        assert [r["i"] for r in results] == list(range(4))
        assert {r["pid"] for r in results} == {os.getpid()}

    def test_worker_exception_relayed_and_pool_survives(self):
        ex = PipelineExecutor(2, backend="processes")
        try:
            with pytest.raises(Exception, match="probe failure"):
                list(ex.map_tasks(
                    "repro.parallel.process_backend:_failing_probe_task",
                    ({"i": i} for i in range(4))))
            # The pool must stay usable after relaying a task failure.
            again = list(ex.map_tasks(PROBE, ({"i": i} for i in range(3))))
            assert [r["i"] for r in again] == [0, 1, 2]
        finally:
            ex.shutdown()

    def test_invalid_window_rejected(self):
        ex = PipelineExecutor(2, backend="processes")
        try:
            with pytest.raises(ConfigError):
                list(ex.map_tasks(PROBE, iter([{}]), window=0))
        finally:
            ex.shutdown()

    def test_armed_fault_plan_disables_process_dispatch(self):
        import os

        ex = PipelineExecutor(4, backend="processes")
        try:
            with inject(FaultPlan(seed=1)):
                assert not ex.parallel
                assert not ex.process_parallel
                results = list(ex.map_tasks(PROBE, ({"i": i} for i in range(3))))
                assert {r["pid"] for r in results} == {os.getpid()}
        finally:
            ex.shutdown()


class TestCleanupOnMidMapFailure:
    """A mid-map exception must leave no helper thread or scratch state.

    Helper threads (prefetch/read-ahead/write-behind) are joined in
    ``finally`` paths, every registered run file is closed, and every
    shared-memory segment is unlinked — under both in-process and
    process backends.
    """

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_no_thread_file_or_shm_residue(self, tmp_path, backend,
                                           monkeypatch):
        import os

        from repro.config import AssemblyConfig, MemoryConfig
        from repro.core import map_phase
        from repro.core.context import RunContext
        from repro.extmem import streams
        from repro.seq.datasets import tiny_dataset
        from repro.seq.packing import PackedReadStore

        calls = []
        real = map_phase._fingerprint_batch

        def flaky(*args, **kwargs):
            calls.append(1)
            if len(calls) > 1:
                raise RuntimeError("mid-map failure")
            return real(*args, **kwargs)

        # Patch BEFORE the RunContext exists: the process backend forks
        # its workers at executor construction and must inherit the patch.
        monkeypatch.setattr(map_phase, "_fingerprint_batch", flaky)

        # Residue is judged as a delta: other tests in the same process
        # may hold open run files or threads of their own legitimately.
        base_paths = set(streams._OPEN_PATHS)
        base_threads = {t.name for t in threading.enumerate()}
        base_shm = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") \
            else set()

        md, _ = tiny_dataset(tmp_path / "data", genome_length=2000,
                             read_length=50, coverage=20.0, min_overlap=25,
                             seed=5)
        config = AssemblyConfig(min_overlap=25, workers=2,
                                executor_backend=backend,
                                memory=MemoryConfig(64 << 20, 1 << 20),
                                map_batch_reads=16,
                                host_block_pairs=500, device_block_pairs=128)
        ctx = RunContext(config, workdir=tmp_path / "work")
        try:
            with pytest.raises(Exception, match="mid-map failure"):
                with PackedReadStore.open(md.store_path) as store:
                    from repro.core.map_phase import run_map

                    run_map(ctx, store)
        finally:
            ctx.cleanup()

        left_open = set(streams._OPEN_PATHS) - base_paths
        assert left_open == set(), f"scratch run files left open: {left_open}"
        stragglers = [t.name for t in threading.enumerate()
                      if t.name.startswith("repro-") and t.is_alive()
                      and t.name not in base_threads]
        assert stragglers == [], f"helper threads still alive: {stragglers}"
        if os.path.isdir("/dev/shm"):
            leaked = [n for n in os.listdir("/dev/shm")
                      if n.startswith("psm_") and n not in base_shm]
            assert leaked == [], f"shared memory segments leaked: {leaked}"

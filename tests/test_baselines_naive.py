"""Naive exact overlapper — the oracle itself gets sanity checks."""

import numpy as np
import pytest

from repro.baselines import exact_overlaps, greedy_graph_from_overlaps
from repro.errors import ConfigError
from repro.seq.records import ReadBatch


class TestExactOverlaps:
    def test_hand_built_overlap(self):
        #            0123456789
        reads = ["AAACCCGGGT", "CCGGGTTTTA"]  # suffix 6 of r0 == prefix 6 of r1
        batch = ReadBatch.from_strings(reads)
        overlaps = exact_overlaps(batch, 4)
        assert (0, 2, 6) in overlaps
        # and the complement pair: rc(r1) suffix 6 == rc(r0) prefix 6
        assert (3, 1, 6) in overlaps

    def test_no_same_read_overlaps(self):
        batch = ReadBatch.from_strings(["ACACACACAC"])  # periodic: self-overlaps
        overlaps = exact_overlaps(batch, 2)
        assert overlaps == []

    def test_descending_length_order(self, tiny_batch):
        overlaps = exact_overlaps(tiny_batch, 30)
        lengths = [l for _, _, l in overlaps]
        assert lengths == sorted(lengths, reverse=True)

    def test_min_overlap_respected(self, tiny_batch):
        overlaps = exact_overlaps(tiny_batch, 40)
        assert all(l >= 40 for _, _, l in overlaps)
        assert all(l < tiny_batch.read_length for _, _, l in overlaps)

    def test_validation(self):
        batch = ReadBatch.from_strings(["ACGT"])
        with pytest.raises(ConfigError):
            exact_overlaps(batch, 4)

    def test_symmetry(self, tiny_batch):
        """Every overlap's complement pair is also present."""
        overlaps = set(exact_overlaps(tiny_batch, 30))
        for u, v, l in overlaps:
            assert (v ^ 1, u ^ 1, l) in overlaps


class TestGreedyFromOverlaps:
    def test_builds_valid_graph(self, tiny_batch):
        overlaps = exact_overlaps(tiny_batch, 25)
        graph = greedy_graph_from_overlaps(overlaps, tiny_batch.n_reads,
                                           tiny_batch.read_length)
        graph.check_invariants()
        assert graph.n_edges > 0

    def test_empty_overlap_list(self):
        graph = greedy_graph_from_overlaps([], 5, 30)
        assert graph.n_edges == 0

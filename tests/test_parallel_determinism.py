"""Backend/worker-count determinism: parallel runs are byte-identical.

The pipelined executor promises that ``workers`` and ``executor_backend``
are execution-only knobs: partition files, sorted runs, the reduced graph,
the contigs, the checkpoint ledger and the deterministic sim-clock trace
must be byte-for-byte identical for any backend × worker-count
combination. These tests run map → sort → reduce on three different
simulated genomes under ``workers ∈ {1, 2, 4}`` (with cramped block
budgets so the external sort really forms and merges multiple runs),
sweep the full ``serial | threads | processes`` backend matrix on one of
them, and compare every artifact.
"""

import hashlib

import numpy as np
import pytest

from repro.config import (AssemblyConfig, MemoryConfig, default_backend,
                          default_workers)
from repro.core.checkpoint import STATE_FILE, config_fingerprint
from repro.core.context import RunContext
from repro.core.map_phase import run_map
from repro.core.pipeline import Assembler
from repro.core.reduce_phase import run_reduce
from repro.core.sort_phase import run_sort
from repro.errors import ConfigError
from repro.seq.datasets import tiny_dataset
from repro.seq.packing import PackedReadStore
from repro.trace import PERFETTO_SIM_FILE

WORKER_COUNTS = (1, 2, 4)
GENOME_SEEDS = (3, 11, 29)
BACKENDS = ("serial", "threads", "processes")


def _config(workers: int, backend: str = "auto") -> AssemblyConfig:
    # Cramped blocks force multi-run sorts with real merge rounds, so the
    # read-ahead / write-behind paths are genuinely exercised.
    return AssemblyConfig(min_overlap=25, workers=workers,
                          executor_backend=backend,
                          memory=MemoryConfig(64 << 20, 1 << 20),
                          host_block_pairs=500, device_block_pairs=128)


def _file_hashes(directory) -> dict[str, str]:
    return {p.name: hashlib.sha256(p.read_bytes()).hexdigest()
            for p in sorted(directory.iterdir()) if p.is_file()}


def _run_pipeline(md, workdir, workers: int, backend: str = "auto"):
    """map → sort → reduce; returns (map hashes, sort hashes, graph arrays)."""
    ctx = RunContext(_config(workers, backend), workdir=workdir)
    try:
        with PackedReadStore.open(md.store_path) as store:
            partitions, _ = run_map(ctx, store)
            map_hashes = _file_hashes(ctx.workdir / "partitions")
            run_sort(ctx, partitions)
            sort_hashes = _file_hashes(ctx.workdir / "partitions")
            graph, _ = run_reduce(ctx, partitions, store)
            arrays = (graph.target.copy(), graph.overlap.copy(),
                      graph.in_degree.copy())
    finally:
        ctx.cleanup()
    return map_hashes, sort_hashes, arrays


@pytest.mark.parametrize("seed", GENOME_SEEDS)
def test_worker_count_is_invisible_in_artifacts(tmp_path, seed):
    md, _ = tiny_dataset(tmp_path / "data", genome_length=2000, read_length=50,
                         coverage=20.0, min_overlap=25, seed=seed)
    baseline = _run_pipeline(md, tmp_path / "w1", workers=1)
    for workers in WORKER_COUNTS[1:]:
        candidate = _run_pipeline(md, tmp_path / f"w{workers}", workers=workers)
        assert candidate[0] == baseline[0], "partition files differ"
        assert candidate[1] == baseline[1], "sorted runs differ"
        for ours, theirs in zip(candidate[2], baseline[2]):
            assert np.array_equal(ours, theirs), "graph arrays differ"


def test_backend_matrix_is_invisible_in_artifacts(tmp_path):
    """Every backend × worker-count cell reproduces the serial artifacts."""
    md, _ = tiny_dataset(tmp_path / "data", genome_length=2000, read_length=50,
                         coverage=20.0, min_overlap=25, seed=GENOME_SEEDS[0])
    baseline = _run_pipeline(md, tmp_path / "base", workers=1,
                             backend="serial")
    for backend in BACKENDS:
        for workers in WORKER_COUNTS:
            if (backend, workers) == ("serial", 1):
                continue
            cell = f"{backend}-w{workers}"
            candidate = _run_pipeline(md, tmp_path / cell, workers=workers,
                                      backend=backend)
            assert candidate[0] == baseline[0], f"partition files differ ({cell})"
            assert candidate[1] == baseline[1], f"sorted runs differ ({cell})"
            for ours, theirs in zip(candidate[2], baseline[2]):
                assert np.array_equal(ours, theirs), f"graph arrays differ ({cell})"


def test_backend_matrix_contigs_checkpoints_and_sim_trace(tmp_path):
    """Contigs, checkpoint ledger and sim-clock trace are backend-invariant.

    Mirrors test_trace.py's worker-invariance check, across backends: the
    deterministic sim export's bytes (nanosecond-rounded simulated stamps)
    must not reveal how the run was executed, and a checkpoint written
    under one backend must be byte-identical to (hence resumable from)
    any other.
    """
    md, _ = tiny_dataset(tmp_path / "data", genome_length=2000, read_length=50,
                         coverage=20.0, min_overlap=25, seed=GENOME_SEEDS[1])
    artifacts = {}
    for backend, workers in (("serial", 1), ("threads", 4), ("processes", 4)):
        trace_dir = tmp_path / f"trace-{backend}"
        workdir = tmp_path / f"work-{backend}"
        config = AssemblyConfig(min_overlap=25, workers=workers,
                                executor_backend=backend,
                                trace=str(trace_dir),
                                memory=MemoryConfig(64 << 20, 1 << 20),
                                host_block_pairs=500, device_block_pairs=128)
        result = Assembler(config).assemble(md.store_path, workdir=workdir,
                                            resume=True)
        artifacts[backend] = (
            result.contigs.flat_codes.tobytes()
            + result.contigs.offsets.tobytes(),
            (workdir / STATE_FILE).read_bytes(),
            (trace_dir / PERFETTO_SIM_FILE).read_bytes(),
        )
    for backend in ("threads", "processes"):
        for part, label in zip(range(3), ("contigs", "checkpoint ledger",
                                          "sim trace")):
            assert artifacts[backend][part] == artifacts["serial"][part], \
                f"{label} differs under the {backend} backend"


def test_multiple_sorted_runs_were_formed(tmp_path):
    """Guard the fixture: the cramped budget must force a real merge."""
    md, _ = tiny_dataset(tmp_path / "data", genome_length=2000, read_length=50,
                         coverage=20.0, min_overlap=25, seed=GENOME_SEEDS[0])
    ctx = RunContext(_config(4), workdir=tmp_path / "work")
    try:
        with PackedReadStore.open(md.store_path) as store:
            partitions, _ = run_map(ctx, store)
            report = run_sort(ctx, partitions)
        assert any(r.initial_runs > 1 and r.merge_rounds >= 1
                   for r in report.reports.values())
    finally:
        ctx.cleanup()


class TestWorkersConfig:
    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert default_workers() == 4
        assert AssemblyConfig(min_overlap=25).workers == 4

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == 1

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigError):
            default_workers()

    def test_zero_means_auto(self):
        config = AssemblyConfig(min_overlap=25, workers=0)
        assert config.resolved_workers() >= 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            AssemblyConfig(min_overlap=25, workers=-1)

    def test_workers_excluded_from_fingerprint(self):
        one = config_fingerprint(_config(1), "src")
        four = config_fingerprint(_config(4), "src")
        assert one == four

    def test_resolved_workers_revalidates_injected_value(self):
        # A worker count smuggled past the constructor (object.__setattr__
        # on the frozen dataclass) must still hit the shared ConfigError
        # path at resolve time, not silently reach the executor.
        config = AssemblyConfig(min_overlap=25, workers=1)
        object.__setattr__(config, "workers", -2)
        with pytest.raises(ConfigError):
            config.resolved_workers()

    def test_resolved_workers_revalidates_type(self):
        config = AssemblyConfig(min_overlap=25, workers=1)
        object.__setattr__(config, "workers", "plenty")
        with pytest.raises(ConfigError):
            config.resolved_workers()


class TestBackendConfig:
    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "threads")
        assert default_backend() == "threads"
        assert AssemblyConfig(min_overlap=25).executor_backend == "threads"

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend() == "auto"

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "quantum")
        with pytest.raises(ConfigError):
            default_backend()

    def test_constructor_rejects_garbage(self):
        with pytest.raises(ConfigError):
            AssemblyConfig(min_overlap=25, executor_backend="quantum")

    def test_auto_resolution(self):
        assert _config(1).resolved_backend() == "serial"
        assert _config(4).resolved_backend() == "processes"
        assert _config(4, backend="threads").resolved_backend() == "threads"

    def test_backend_excluded_from_fingerprint(self):
        serial = config_fingerprint(_config(4, backend="serial"), "src")
        procs = config_fingerprint(_config(4, backend="processes"), "src")
        assert serial == procs

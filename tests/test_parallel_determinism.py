"""Worker-count determinism: parallel runs are byte-identical to serial.

The pipelined executor promises that ``workers`` is an execution-only knob:
partition files, sorted runs and the reduced graph must be byte-for-byte
identical for any worker count. These tests run map → sort → reduce on
three different simulated genomes under ``workers ∈ {1, 2, 4}`` (with
cramped block budgets so the external sort really forms and merges multiple
runs) and compare every artifact.
"""

import hashlib

import numpy as np
import pytest

from repro.config import AssemblyConfig, MemoryConfig, default_workers
from repro.core.context import RunContext
from repro.core.map_phase import run_map
from repro.core.reduce_phase import run_reduce
from repro.core.sort_phase import run_sort
from repro.errors import ConfigError
from repro.seq.datasets import tiny_dataset
from repro.seq.packing import PackedReadStore

WORKER_COUNTS = (1, 2, 4)
GENOME_SEEDS = (3, 11, 29)


def _config(workers: int) -> AssemblyConfig:
    # Cramped blocks force multi-run sorts with real merge rounds, so the
    # read-ahead / write-behind paths are genuinely exercised.
    return AssemblyConfig(min_overlap=25, workers=workers,
                          memory=MemoryConfig(64 << 20, 1 << 20),
                          host_block_pairs=500, device_block_pairs=128)


def _file_hashes(directory) -> dict[str, str]:
    return {p.name: hashlib.sha256(p.read_bytes()).hexdigest()
            for p in sorted(directory.iterdir()) if p.is_file()}


def _run_pipeline(md, workdir, workers: int):
    """map → sort → reduce; returns (map hashes, sort hashes, graph arrays)."""
    ctx = RunContext(_config(workers), workdir=workdir)
    try:
        with PackedReadStore.open(md.store_path) as store:
            partitions, _ = run_map(ctx, store)
            map_hashes = _file_hashes(ctx.workdir / "partitions")
            run_sort(ctx, partitions)
            sort_hashes = _file_hashes(ctx.workdir / "partitions")
            graph, _ = run_reduce(ctx, partitions, store)
            arrays = (graph.target.copy(), graph.overlap.copy(),
                      graph.in_degree.copy())
    finally:
        ctx.cleanup()
    return map_hashes, sort_hashes, arrays


@pytest.mark.parametrize("seed", GENOME_SEEDS)
def test_worker_count_is_invisible_in_artifacts(tmp_path, seed):
    md, _ = tiny_dataset(tmp_path / "data", genome_length=2000, read_length=50,
                         coverage=20.0, min_overlap=25, seed=seed)
    baseline = _run_pipeline(md, tmp_path / "w1", workers=1)
    for workers in WORKER_COUNTS[1:]:
        candidate = _run_pipeline(md, tmp_path / f"w{workers}", workers=workers)
        assert candidate[0] == baseline[0], "partition files differ"
        assert candidate[1] == baseline[1], "sorted runs differ"
        for ours, theirs in zip(candidate[2], baseline[2]):
            assert np.array_equal(ours, theirs), "graph arrays differ"


def test_multiple_sorted_runs_were_formed(tmp_path):
    """Guard the fixture: the cramped budget must force a real merge."""
    md, _ = tiny_dataset(tmp_path / "data", genome_length=2000, read_length=50,
                         coverage=20.0, min_overlap=25, seed=GENOME_SEEDS[0])
    ctx = RunContext(_config(4), workdir=tmp_path / "work")
    try:
        with PackedReadStore.open(md.store_path) as store:
            partitions, _ = run_map(ctx, store)
            report = run_sort(ctx, partitions)
        assert any(r.initial_runs > 1 and r.merge_rounds >= 1
                   for r in report.reports.values())
    finally:
        ctx.cleanup()


class TestWorkersConfig:
    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert default_workers() == 4
        assert AssemblyConfig(min_overlap=25).workers == 4

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == 1

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigError):
            default_workers()

    def test_zero_means_auto(self):
        config = AssemblyConfig(min_overlap=25, workers=0)
        assert config.resolved_workers() >= 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            AssemblyConfig(min_overlap=25, workers=-1)

    def test_workers_excluded_from_fingerprint(self):
        from repro.core.checkpoint import config_fingerprint

        one = config_fingerprint(_config(1), "src")
        four = config_fingerprint(_config(4), "src")
        assert one == four

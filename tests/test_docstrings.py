"""Documentation gate: every public item in the library carries a docstring.

"Documented public API" is a deliverable, so it is enforced mechanically:
every module, public class, public function and public method reachable
from the ``repro`` package must have a non-trivial docstring.
"""

import importlib
import inspect
import pkgutil

import repro

IGNORED_METHOD_NAMES = {
    # dataclass/stdlib machinery and dunder noise
    "__init__", "__repr__", "__eq__", "__hash__", "__post_init__",
}


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        yield importlib.import_module(info.name)


def _is_local(obj, module) -> bool:
    return getattr(obj, "__module__", None) == module.__name__


def test_every_module_documented():
    undocumented = [module.__name__ for module in _public_modules()
                    if not (module.__doc__ or "").strip()]
    assert undocumented == []


def test_every_public_callable_documented():
    missing: list[str] = []
    for module in _public_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or not _is_local(obj, module):
                continue
            if inspect.isfunction(obj) and not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
            if inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
                for method_name, method in vars(obj).items():
                    if method_name.startswith("_") \
                            or method_name in IGNORED_METHOD_NAMES:
                        continue
                    func = method.__func__ if isinstance(
                        method, (classmethod, staticmethod)) else method
                    if inspect.isfunction(func) \
                            and not (func.__doc__ or "").strip():
                        missing.append(
                            f"{module.__name__}.{name}.{method_name}")
    assert missing == [], f"{len(missing)} undocumented: {missing[:20]}"

"""BufferPool substrate: recycling is invisible to the simulation model.

The buffer pool recycles the real numpy storage behind device arrays; the
contract is that nothing *modeled* may notice — metered peaks, simulated
charges, capacity enforcement and every artifact byte must be identical
with pooling on or off. These tests pin the free-list mechanics, the
ownership-transfer rules (``consume=`` / ``out=``), and run the pipeline's
map + sort phases across the backend × worker matrix with pooling enabled
against a pooling-disabled baseline.
"""

import hashlib

import numpy as np
import pytest

from repro.config import AssemblyConfig, MemoryConfig
from repro.core.context import RunContext
from repro.core.map_phase import run_map
from repro.core.sort_phase import run_sort
from repro.device import VirtualGPU
from repro.device.memory import BufferPool
from repro.errors import ConfigError, DeviceError, DeviceMemoryError
from repro.extmem.records import make_records
from repro.seq.datasets import tiny_dataset
from repro.seq.packing import PackedReadStore


class TestBufferPoolFreeList:
    def test_take_rounds_to_size_class(self):
        pool = BufferPool(1 << 20)
        view, raw = pool.take(100, np.uint64)
        assert view.shape == (100,) and view.dtype == np.uint64
        assert raw is not None and raw.nbytes == 1024  # pow2 class ≥ 800
        pool.give(raw)
        _, raw2 = pool.take((64,), np.uint64)  # 512-byte class: no match
        assert raw2 is not raw
        counters = pool.counters()
        assert counters["bufpool_misses"] == 2
        assert counters["bufpool_recycled"] == 1

    def test_recycled_buffer_is_reissued(self):
        pool = BufferPool(1 << 20)
        _, raw = pool.take(100, np.uint64)
        pool.give(raw)
        view, raw2 = pool.take(128, np.uint64)  # same 1024-byte class
        assert raw2 is raw
        assert pool.counters()["bufpool_hits"] == 1

    def test_retention_cap_drops_excess(self):
        pool = BufferPool(max_bytes=1024)
        _, a = pool.take(100, np.uint64)
        _, b = pool.take(100, np.uint64)
        pool.give(a)
        pool.give(b)  # second 1024-byte buffer exceeds the cap
        assert pool.held_bytes == 1024
        assert pool.counters()["bufpool_dropped"] == 1

    def test_give_none_is_noop(self):
        pool = BufferPool(1 << 20)
        pool.give(None)
        assert pool.held_bytes == 0

    def test_disabled_pool_returns_fresh_arrays(self):
        pool = BufferPool(1 << 20, enabled=False)
        view, raw = pool.take(100, np.uint64)
        assert raw is None and view.flags.owndata

    def test_adoptable_refuses_views_and_readonly(self):
        pool = BufferPool(1 << 20)
        owner = np.zeros(1000, dtype=np.uint64)
        assert pool.adoptable(owner[10:]) is None, "view adopted"
        poisoned = np.zeros(1000, dtype=np.uint64)
        poisoned.setflags(write=False)
        assert pool.adoptable(poisoned) is None, "read-only array adopted"
        assert pool.adoptable(np.zeros(4, dtype=np.uint8)) is None, \
            "sub-class-size array adopted"
        assert pool.adoptable(owner) is not None

    def test_clear_empties_free_lists(self):
        pool = BufferPool(1 << 20)
        _, raw = pool.take(100, np.uint64)
        pool.give(raw)
        pool.clear()
        assert pool.held_bytes == 0
        _, raw2 = pool.take(100, np.uint64)
        assert raw2 is not raw


class TestGiveSizeClassRounding:
    """`give` classification: the class a raw lands in must guarantee every
    later `take` of that class fits inside the raw's real extent."""

    def test_exact_power_of_two_keeps_its_own_class(self):
        pool = BufferPool(1 << 20)
        _, raw = pool.take(128, np.uint64)  # exactly 1024 bytes
        assert raw.nbytes == 1024
        pool.give(raw)
        _, raw2 = pool.take(128, np.uint64)  # 1024-byte class again
        assert raw2 is raw
        counters = pool.counters()
        assert counters["bufpool_hits"] == 1
        assert counters["bufpool_misses"] == 1
        assert counters["bufpool_recycled"] == 1

    def test_just_under_power_of_two_rounds_down(self):
        pool = BufferPool(1 << 20)
        raw = np.empty(1023, dtype=np.uint8)  # foreign, non-pow2 extent
        pool.give(raw)
        assert pool.held_bytes == 1023
        _, hit = pool.take(64, np.uint64)  # 512-byte class
        assert hit is raw, "1023-byte raw must serve the 512 class"
        _, miss = pool.take(128, np.uint64)  # 1024-byte class: never this raw
        assert miss is not raw
        counters = pool.counters()
        assert counters["bufpool_hits"] == 1
        assert counters["bufpool_misses"] == 1

    def test_just_over_power_of_two_rounds_down_to_that_class(self):
        pool = BufferPool(1 << 20)
        raw = np.empty(1025, dtype=np.uint8)
        pool.give(raw)
        _, hit = pool.take(128, np.uint64)  # 1024-byte class fits in 1025
        assert hit is raw
        assert pool.counters()["bufpool_hits"] == 1

    def test_sub_minimum_raws_are_dropped(self):
        pool = BufferPool(1 << 20)
        for nbytes in (0, 1, 255):
            pool.give(np.empty(nbytes, dtype=np.uint8))
        assert pool.held_bytes == 0
        _, raw = pool.take(16, np.uint8)  # 256-byte class: a fresh miss
        assert raw.nbytes == 256
        counters = pool.counters()
        assert counters["bufpool_misses"] == 1
        assert counters["bufpool_hits"] == 0
        assert counters["bufpool_recycled"] == 0

    def test_read_only_raw_is_refused(self):
        """A consumed (poisoned) raw must never re-enter the free list."""
        pool = BufferPool(1 << 20)
        _, raw = pool.take(100, np.uint64)
        raw.setflags(write=False)
        pool.give(raw)
        assert pool.held_bytes == 0
        assert pool.counters()["bufpool_recycled"] == 0
        _, raw2 = pool.take(100, np.uint64)
        assert raw2 is not raw
        assert pool.counters()["bufpool_misses"] == 2


def _device_workout(gpu: VirtualGPU, rng) -> np.ndarray:
    """A transfer + sort + merge sequence; returns the merged keys."""
    runs, inputs = [], []
    for n in (300, 200):
        records = make_records(rng.integers(0, 99, n, dtype=np.uint64),
                               np.arange(n, dtype=np.uint32))
        on_device = gpu.to_device(records)
        inputs.append(on_device)
        runs.append(gpu.sort_records_device(on_device))
    merged = gpu.merge_records_device_k(runs)
    keys = merged.array["key"].copy()
    for darray in inputs + runs + [merged]:
        darray.free()
    return keys


class TestModelInvariance:
    def test_peak_device_bytes_identical_pooling_on_off(self):
        """The MemoryPool model must not see the substrate at all."""
        results = {}
        for enabled in (True, False):
            gpu = VirtualGPU("K40", capacity_bytes=1 << 20,
                             buffers=BufferPool(1 << 20, enabled=enabled))
            rng = np.random.default_rng(7)
            keys = _device_workout(gpu, rng)
            results[enabled] = (gpu.pool.peak_bytes, gpu.pool.used_bytes,
                                dict(gpu.pool.counters()),
                                gpu.clock.total_seconds, keys)
        on, off = results[True], results[False]
        assert on[0] == off[0], "peak device bytes differ"
        assert on[1] == off[1] == 0, "leaked device reservations"
        assert on[2] == off[2], "allocation counts differ"
        assert on[3] == off[3], "simulated charges differ"
        assert np.array_equal(on[4], off[4]), "kernel results differ"

    def test_use_after_free_still_raises(self):
        gpu = VirtualGPU("K40", capacity_bytes=1 << 20)
        darray = gpu.to_device(np.zeros(300, dtype=np.uint64))
        darray.free()
        with pytest.raises(DeviceMemoryError, match="use-after-free"):
            gpu.to_host(darray)
        with pytest.raises(DeviceMemoryError, match="use-after-free"):
            gpu.sort_records_device(darray)

    def test_freed_backing_is_recycled(self):
        gpu = VirtualGPU("K40", capacity_bytes=1 << 20)
        darray = gpu.empty(300, np.uint64)
        darray.free()
        assert gpu.buffers.counters()["bufpool_recycled"] >= 1

    def test_capacity_enforced_even_on_pool_hit(self):
        """A recycled buffer must still pay the modeled reservation."""
        gpu = VirtualGPU("K40", capacity_bytes=4096)
        darray = gpu.empty(500, np.uint64)  # 4000 bytes
        darray.free()
        gpu.empty(500, np.uint64)  # recycled backing, fresh reservation
        with pytest.raises(DeviceMemoryError):
            gpu.empty(500, np.uint64)


class TestOwnershipTransfer:
    def test_consume_poisons_host_array(self):
        gpu = VirtualGPU("K40", capacity_bytes=1 << 20)
        host = np.arange(300, dtype=np.uint64)
        darray = gpu.to_device(host, consume=True)
        assert not host.flags.writeable, "consumed array still writable"
        assert darray.array is host  # zero-copy adoption
        with pytest.raises(ValueError):
            host[0] = 1

    def test_consumed_memory_never_reissued(self):
        """The pool must refuse the poisoned array on free."""
        gpu = VirtualGPU("K40", capacity_bytes=1 << 20)
        host = np.arange(300, dtype=np.uint64)
        darray = gpu.to_device(host, consume=True)
        before = gpu.buffers.counters()["bufpool_recycled"]
        darray.free()
        assert gpu.buffers.counters()["bufpool_recycled"] == before

    def test_consume_skips_views(self):
        """A view's owner must keep write access; only owned arrays poison."""
        gpu = VirtualGPU("K40", capacity_bytes=1 << 20)
        owner = np.arange(600, dtype=np.uint64)
        gpu.to_device(owner[:300], consume=True)
        assert owner.flags.writeable

    def test_to_host_out_reuses_buffer(self):
        gpu = VirtualGPU("K40", capacity_bytes=1 << 20)
        data = np.arange(300, dtype=np.uint64)
        darray = gpu.to_device(data)
        out = np.empty_like(data)
        result = gpu.to_host(darray, out=out)
        assert result is out
        assert np.array_equal(out, data)

    def test_to_device_without_consume_still_copies(self):
        gpu = VirtualGPU("K40", capacity_bytes=1 << 20)
        host = np.zeros(300, dtype=np.uint64)
        darray = gpu.to_device(host)
        host[0] = 7
        assert darray.array[0] == 0
        assert host.flags.writeable

    def test_reconsume_raises_typed_error_naming_owner(self):
        gpu = VirtualGPU("K40", capacity_bytes=1 << 20)
        host = np.arange(300, dtype=np.uint64)
        gpu.to_device(host, label="merge-run-a", consume=True)
        with pytest.raises(DeviceError, match="merge-run-a"):
            gpu.to_device(host, label="again", consume=True)

    def test_to_host_into_poisoned_array_raises_typed_error(self):
        gpu = VirtualGPU("K40", capacity_bytes=1 << 20)
        host = np.arange(300, dtype=np.uint64)
        darray = gpu.to_device(host, label="merge-run-b", consume=True)
        with pytest.raises(DeviceError, match="merge-run-b"):
            gpu.to_host(darray, out=host)

    def test_to_host_into_read_only_array_raises_typed_error(self):
        gpu = VirtualGPU("K40", capacity_bytes=1 << 20)
        darray = gpu.to_device(np.arange(300, dtype=np.uint64))
        frozen = np.empty(300, dtype=np.uint64)
        frozen.setflags(write=False)
        with pytest.raises(DeviceError, match="read-only"):
            gpu.to_host(darray, out=frozen)

    def test_device_memory_error_is_a_device_error(self):
        # Callers catching the new base class keep catching OOM too.
        assert issubclass(DeviceMemoryError, DeviceError)

    def test_poison_registry_does_not_pin_arrays(self):
        import gc
        import weakref

        gpu = VirtualGPU("K40", capacity_bytes=1 << 20)
        host = np.arange(300, dtype=np.uint64)
        gpu.to_device(host, label="h2d", consume=True)
        ref = weakref.ref(host)
        del host
        gc.collect()
        assert ref() is None, "consume tracking kept the host array alive"


def _map_sort_hashes(md, workdir, *, buffer_pool: bool, workers: int = 1,
                     backend: str = "serial") -> dict[str, str]:
    config = AssemblyConfig(min_overlap=25, workers=workers,
                            executor_backend=backend,
                            memory=MemoryConfig(64 << 20, 1 << 20),
                            host_block_pairs=500, device_block_pairs=128,
                            buffer_pool=buffer_pool)
    ctx = RunContext(config, workdir=workdir)
    try:
        with PackedReadStore.open(md.store_path) as store:
            partitions, _ = run_map(ctx, store)
            run_sort(ctx, partitions)
        return {p.name: hashlib.sha256(p.read_bytes()).hexdigest()
                for p in sorted((ctx.workdir / "partitions").iterdir())
                if p.is_file()}
    finally:
        ctx.cleanup()


def test_pooling_byte_identical_across_backend_matrix(tmp_path):
    """Pooled artifacts match the unpooled baseline for every backend cell."""
    md, _ = tiny_dataset(tmp_path / "data", genome_length=2000, read_length=50,
                         coverage=20.0, min_overlap=25, seed=3)
    baseline = _map_sort_hashes(md, tmp_path / "base", buffer_pool=False)
    for backend, workers in (("serial", 1), ("threads", 2),
                             ("processes", 2)):
        cell = f"{backend}-w{workers}"
        hashes = _map_sort_hashes(md, tmp_path / cell, buffer_pool=True,
                                  workers=workers, backend=backend)
        assert hashes == baseline, f"pooled artifacts diverged ({cell})"


def test_pool_knobs_excluded_from_checkpoint_fingerprint():
    from repro.core.checkpoint import config_fingerprint

    pooled = AssemblyConfig(min_overlap=25, buffer_pool=True)
    bare = AssemblyConfig(min_overlap=25, buffer_pool=False,
                          pool_max_bytes=1 << 20)
    assert config_fingerprint(pooled, "src") == config_fingerprint(bare, "src")

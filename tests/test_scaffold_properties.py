"""Scaffolding property tests: random libraries, structural invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Assembler, AssemblyConfig
from repro.scaffold import scaffold_assembly
from repro.scaffold.links import bundle_links
from repro.seq.packing import PackedReadStore
from repro.seq.simulate import PairedReadSimulator, simulate_genome

library_params = st.tuples(
    st.integers(4000, 12_000),   # genome length
    st.integers(250, 500),       # insert size
    st.integers(0, 2**31 - 1),   # seed
)


class TestScaffoldProperties:
    @given(library_params)
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_scaffolding_never_loses_contig_bases(self, tmp_path_factory,
                                                  params):
        genome_length, insert, seed = params
        root = tmp_path_factory.mktemp("scprop")
        genome = simulate_genome(genome_length, seed=seed)
        sim = PairedReadSimulator(genome=genome, read_length=60,
                                  coverage=22.0, insert_size=insert,
                                  insert_std=8.0, seed=seed + 1)
        batch, n_pairs = sim.all_reads()
        path = root / "pe.lsgr"
        with PackedReadStore.create(path, 60) as store:
            store.append_batch(batch)
        result = Assembler(AssemblyConfig(min_overlap=30)).assemble(path)
        scaffolds = scaffold_assembly(result.contigs, result.paths,
                                      n_pairs=n_pairs, read_length=60,
                                      insert_size=insert, min_support=3)
        contig_bases = int(result.contig_lengths().sum())
        scaffold_non_gap = sum(len(s) - s.count("N")
                               for s in scaffolds.sequences)
        # Every contig appears exactly once across the scaffolds.
        assert scaffold_non_gap == contig_bases
        # Scaffolding can only reduce the sequence count.
        assert len(scaffolds.sequences) <= result.contigs.n_contigs
        # Contiguity never degrades.
        assert scaffolds.stats()["n50"] >= result.stats()["n50"]

    @given(st.lists(
        st.tuples(st.integers(0, 5), st.booleans(), st.integers(0, 5),
                  st.booleans(), st.integers(-50, 500)),
        max_size=60))
    @settings(max_examples=50)
    def test_bundling_invariants(self, raw_links):
        raw_links = [l for l in raw_links if l[0] != l[2]]
        bundled = bundle_links(raw_links, min_support=2)
        # Sorted by support, all above threshold, no self links.
        supports = [b.support for b in bundled]
        assert supports == sorted(supports, reverse=True)
        assert all(s >= 2 for s in supports)
        assert all(b.contig_a != b.contig_b for b in bundled)
        # Canonicalization: at most one bundle per unordered oriented pair.
        keys = set()
        for b in bundled:
            key = frozenset([(b.contig_a, b.flip_a), (b.contig_b, not b.flip_b)])
            assert key not in keys
            keys.add(key)

"""FingerprintScheme: lane packing and record widths."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.fingerprint import FingerprintScheme
from repro.fingerprint.scheme import pack_pair
from repro.seq.alphabet import encode


class TestPacking:
    def test_pack_pair(self):
        assert int(pack_pair(1, 2)) == (1 << 32) | 2
        packed = pack_pair(np.array([2**30], dtype=np.uint64),
                           np.array([7], dtype=np.uint64))
        assert int(packed[0]) == (2**30 << 32) | 7

    def test_keys_fit_uint64(self):
        top = pack_pair(2**31 - 1, 2**31 - 1)
        assert int(top) < 2**63


class TestScheme:
    def test_record_widths_match_design(self):
        assert FingerprintScheme(lanes=1).record_nbytes == 12
        assert FingerprintScheme(lanes=2).record_nbytes == 20  # paper width

    def test_lane_validation(self):
        with pytest.raises(ConfigError):
            FingerprintScheme(lanes=3)

    def test_hash_specs_distinct(self):
        scheme = FingerprintScheme(lanes=2)
        assert len(set(scheme.hash_specs)) == 4

    def test_seed_changes_parameters(self):
        a = FingerprintScheme(lanes=1, seed=0)
        b = FingerprintScheme(lanes=1, seed=1)
        assert a.hash_specs != b.hash_specs

    def test_key_matrix_shapes(self):
        scheme = FingerprintScheme(lanes=2)
        codes = np.zeros((3, 17), dtype=np.uint8)
        prefix_keys, suffix_keys = scheme.key_matrices(codes)
        assert len(prefix_keys) == 2 and len(suffix_keys) == 2
        assert prefix_keys[0].shape == (3, 17)

    @given(st.text(alphabet="ACGT", min_size=2, max_size=50), st.integers(0, 3))
    @settings(max_examples=40)
    def test_columns_match_naive_keys(self, text, seed):
        scheme = FingerprintScheme(lanes=2, seed=seed)
        codes = encode(text)[None, :]
        prefix_keys, suffix_keys = scheme.key_matrices(codes)
        cut = len(text) // 2 or 1
        for lane in range(2):
            assert int(prefix_keys[lane][0, cut - 1]) \
                == scheme.naive_keys(codes[0, :cut])[lane]
            assert int(suffix_keys[lane][0, len(text) - cut]) \
                == scheme.naive_keys(codes[0, len(text) - cut:])[lane]

    def test_different_strings_different_keys(self, rng):
        """62-bit keys: no collisions among 10k random 30-mers."""
        scheme = FingerprintScheme(lanes=1)
        codes = rng.integers(0, 4, (10_000, 30), dtype=np.uint8)
        unique_rows = np.unique(codes, axis=0)
        prefix_keys, _ = scheme.key_matrices(unique_rows)
        full_keys = prefix_keys[0][:, -1]
        assert np.unique(full_keys).shape[0] == unique_rows.shape[0]

"""k-mer-spectrum error correction."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.seq.correction import (KmerSpectrumCorrector, correct_and_filter,
                                  correct_reads, filter_uncorrectable,
                                  kmer_counts)
from repro.seq.records import ReadBatch
from repro.seq.simulate import ReadSimulator, simulate_genome


@pytest.fixture(scope="module")
def noisy_setup():
    genome = simulate_genome(2500, seed=50)
    clean = ReadSimulator(genome=genome, read_length=60, coverage=30.0,
                          seed=51).all_reads()
    noisy = ReadSimulator(genome=genome, read_length=60, coverage=30.0,
                          seed=51, error_rate=0.01).all_reads()
    return genome, clean, noisy


class TestKmerCounts:
    def test_counts(self):
        batch = ReadBatch.from_strings(["ACGTACGT"])
        counts = kmer_counts(batch.codes, 4)
        # ACGT appears at positions 0 and 4
        acgt = (0 << 6) | (1 << 4) | (2 << 2) | 3
        assert counts[acgt] == 2


class TestCorrection:
    def test_fixes_majority_of_errors(self, noisy_setup):
        _, clean, noisy = noisy_setup
        errors_before = int((clean.codes != noisy.codes).sum())
        corrected, report = correct_reads(noisy, k=17)
        errors_after = int((clean.codes != corrected.codes).sum())
        assert errors_after < 0.5 * errors_before
        assert report.bases_corrected > 0
        assert report.reads_changed <= report.reads_scanned

    def test_never_corrupts_clean_reads(self, noisy_setup):
        _, clean, _ = noisy_setup
        corrected, report = correct_reads(clean, k=17)
        assert np.array_equal(corrected.codes, clean.codes)
        assert report.bases_corrected == 0

    def test_single_isolated_error_fixed_exactly(self):
        genome = simulate_genome(400, seed=52)
        clean = ReadSimulator(genome=genome, read_length=50, coverage=40.0,
                              seed=53, rc_fraction=0.0).all_reads()
        noisy_codes = clean.codes.copy()
        noisy_codes[3, 25] = (noisy_codes[3, 25] + 1) % 4  # mid-read error
        corrected, report = correct_reads(ReadBatch(noisy_codes), k=15)
        assert np.array_equal(corrected.codes[3], clean.codes[3])
        assert report.bases_corrected >= 1

    def test_error_near_read_start_fixed(self):
        genome = simulate_genome(400, seed=54)
        clean = ReadSimulator(genome=genome, read_length=50, coverage=40.0,
                              seed=55, rc_fraction=0.0).all_reads()
        noisy_codes = clean.codes.copy()
        noisy_codes[7, 2] = (noisy_codes[7, 2] + 2) % 4
        corrected, _ = correct_reads(ReadBatch(noisy_codes), k=15)
        assert np.array_equal(corrected.codes[7], clean.codes[7])

    def test_empty_batch(self):
        batch = ReadBatch(np.empty((0, 0), dtype=np.uint8))
        corrected, report = correct_reads(batch)
        assert corrected.n_reads == 0 and report.reads_scanned == 0

    def test_k_validation(self):
        batch = ReadBatch.from_strings(["ACGTACGT"])
        with pytest.raises(ConfigError):
            KmerSpectrumCorrector(k=40).correct(batch)
        with pytest.raises(ConfigError):
            KmerSpectrumCorrector(solid_threshold=-1)


class TestFilter:
    def test_drops_only_still_broken_reads(self, noisy_setup):
        _, clean, noisy = noisy_setup
        corrected, _ = correct_reads(noisy, k=17)
        filtered, dropped = filter_uncorrectable(corrected, k=17)
        assert dropped > 0
        assert filtered.n_reads == corrected.n_reads - dropped
        assert filtered.start_id == 0

    def test_assembly_recovers_contiguity(self, noisy_setup):
        """The headline property: correct+filter restores clean-level N50."""
        from repro.baselines import SGAAssembler

        _, clean, noisy = noisy_setup
        filtered, _, _ = correct_and_filter(noisy, k=17)
        assembler = SGAAssembler(min_overlap=30)
        noisy_n50 = assembler.assemble(noisy).stats()["n50"]
        fixed_n50 = assembler.assemble(filtered).stats()["n50"]
        clean_n50 = assembler.assemble(clean).stats()["n50"]
        assert fixed_n50 > 2 * noisy_n50
        assert fixed_n50 > 0.7 * clean_n50

"""Compress phase unit tests: offsets, chunked scans, streaming placement."""

import numpy as np
import pytest

from repro import AssemblyConfig, MemoryConfig
from repro.core.compress_phase import run_compress
from repro.core.context import RunContext
from repro.core.load_phase import run_load
from repro.graph import GreedyStringGraph, spell_contigs, extract_paths
from repro.seq.packing import PackedReadStore
from repro.seq.records import ReadBatch
from repro.seq.alphabet import encode, decode


def _store_from_batch(tmp_path, batch: ReadBatch) -> PackedReadStore:
    path = tmp_path / "reads.lsgr"
    with PackedReadStore.create(path, batch.read_length) as store:
        store.append_batch(batch)
    return PackedReadStore.open(path)


def _oriented(batch: ReadBatch) -> np.ndarray:
    out = np.empty((2 * batch.n_reads, batch.read_length), dtype=np.uint8)
    out[0::2] = batch.codes
    out[1::2] = batch.reverse_complements().codes
    return out


@pytest.fixture()
def chain_setup(tmp_path):
    genome = encode("ACGTTGCAACGGTTAACCGTAGGCATTGCCAA")
    reads = [genome[i:i + 12] for i in (0, 4, 8, 12, 16, 20)]
    batch = ReadBatch(np.stack(reads))
    graph = GreedyStringGraph(len(reads), 12)
    for i in range(len(reads) - 1):
        graph.add_candidates(np.array([2 * i]), np.array([2 * i + 2]), 8)
    store = _store_from_batch(tmp_path, batch)
    ctx = RunContext(AssemblyConfig(min_overlap=6), workdir=tmp_path / "w")
    yield ctx, graph, store, batch, genome
    store.close()
    ctx.cleanup()


class TestCompress:
    def test_matches_in_memory_speller(self, chain_setup):
        ctx, graph, store, batch, _ = chain_setup
        expected_paths = extract_paths(graph).deduplicated()
        expected = spell_contigs(expected_paths, _oriented(batch))
        contigs, paths = run_compress(ctx, graph, store, release_graph=False)
        assert np.array_equal(contigs.offsets, expected.offsets)
        assert np.array_equal(contigs.flat_codes, expected.flat_codes)

    def test_spells_original_genome(self, chain_setup):
        ctx, graph, store, _, genome = chain_setup
        contigs, _ = run_compress(ctx, graph, store, release_graph=False)
        spelled = {decode(c) for c in contigs}
        assert decode(genome) in spelled

    def test_release_graph_frees_host_pool(self, chain_setup, tmp_path):
        ctx, _, store, batch, _ = chain_setup
        graph = GreedyStringGraph(batch.n_reads, batch.read_length,
                                  ctx.host_pool)
        used_with_graph = ctx.host_pool.used_bytes
        run_compress(ctx, graph, store, release_graph=True)
        assert ctx.host_pool.used_bytes < used_with_graph

    def test_chunked_offset_scan_under_tiny_device(self, tmp_path, rng):
        """The path table exceeds device memory; the carry-chunked scan must
        still produce globally correct offsets."""
        codes = rng.integers(0, 4, (200, 20), dtype=np.uint8)
        batch = ReadBatch(codes)
        store = _store_from_batch(tmp_path, batch)
        graph = GreedyStringGraph(200, 20)
        config = AssemblyConfig(
            min_overlap=10,
            memory=MemoryConfig(1 << 20, 2048, name="tiny-dev"))
        ctx = RunContext(config, workdir=tmp_path / "w2")
        contigs, paths = run_compress(ctx, graph, store, release_graph=False)
        # 200 forward singleton contigs of 20 bases each, in order.
        assert contigs.n_contigs == 200
        assert np.array_equal(np.diff(contigs.offsets),
                              np.full(200, 20))
        assert np.array_equal(contigs.contig_codes(123), codes[123])
        store.close()
        ctx.cleanup()

    def test_no_dedupe_keeps_twins(self, chain_setup):
        ctx, graph, store, _, _ = chain_setup
        config = AssemblyConfig(min_overlap=6, dedupe_contigs=False)
        ctx_no_dedupe = RunContext(config, workdir=ctx.workdir / "nd")
        contigs, _ = run_compress(ctx_no_dedupe, graph, store,
                                  release_graph=False)
        texts = [decode(c) for c in contigs]
        from repro.seq.alphabet import reverse_complement_str
        long_texts = [t for t in texts if len(t) > 12]
        assert any(reverse_complement_str(t) in long_texts for t in long_texts)
        ctx_no_dedupe.cleanup()

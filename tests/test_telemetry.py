"""Telemetry: phase capture, counter deltas, peak gauges, merging."""

import pytest

from repro.telemetry import (PhaseStats, Telemetry, format_metric,
                             overlap_saved_s)


class FakeMeter:
    def __init__(self):
        self.total = 0.0
        self.gauge = 0.0
        self._peak = 0.0

    def bump(self, amount: float) -> None:
        self.total += amount
        self.gauge += amount
        self._peak = max(self._peak, self.gauge)

    def drop(self, amount: float) -> None:
        self.gauge -= amount

    def counters(self):
        return {"bytes": self.total}

    def peaks(self):
        return {"gauge": self._peak}

    def reset_peaks(self):
        self._peak = self.gauge


class TestTelemetry:
    def test_phase_counter_deltas(self):
        telemetry = Telemetry()
        meter = FakeMeter()
        telemetry.register(meter)
        meter.bump(100)
        with telemetry.phase("map"):
            meter.bump(50)
        with telemetry.phase("sort"):
            meter.bump(25)
        assert telemetry["map"].counters["bytes"] == 50
        assert telemetry["sort"].counters["bytes"] == 25

    def test_phase_peaks_reset_per_phase(self):
        telemetry = Telemetry()
        meter = FakeMeter()
        telemetry.register(meter)
        meter.bump(1000)
        meter.drop(1000)
        with telemetry.phase("map"):
            meter.bump(10)
        assert telemetry["map"].peaks["gauge"] == 10

    def test_nested_phase_outer_peak_covers_inner(self):
        """The outer phase's peak must reflect its whole extent — activity
        before, during, and after an inner phase (outer peak >= inner)."""
        telemetry = Telemetry()
        meter = FakeMeter()
        telemetry.register(meter)
        with telemetry.phase("outer"):
            meter.bump(20)   # pre-inner spike: the outer maximum
            meter.drop(20)
            with telemetry.phase("inner"):
                meter.bump(5)
                meter.drop(5)
            meter.bump(1)
            meter.drop(1)
        assert telemetry["inner"].peaks["gauge"] == 5
        assert telemetry["outer"].peaks["gauge"] == 20
        assert telemetry["outer"].peaks["gauge"] \
            >= telemetry["inner"].peaks["gauge"]

    def test_nested_phase_inner_spike_propagates_outward(self):
        telemetry = Telemetry()
        meter = FakeMeter()
        telemetry.register(meter)
        with telemetry.phase("outer"):
            meter.bump(3)
            meter.drop(3)
            with telemetry.phase("inner"):
                meter.bump(50)   # inner spike: also the outer maximum
                meter.drop(50)
        assert telemetry["inner"].peaks["gauge"] == 50
        assert telemetry["outer"].peaks["gauge"] == 50

    def test_nested_phase_counters_still_delta(self):
        telemetry = Telemetry()
        meter = FakeMeter()
        telemetry.register(meter)
        with telemetry.phase("outer"):
            meter.bump(10)
            with telemetry.phase("inner"):
                meter.bump(7)
        assert telemetry["inner"].counters["bytes"] == 7
        assert telemetry["outer"].counters["bytes"] == 17

    def test_sequential_phases_still_isolated_after_nesting(self):
        """A later sibling phase must not inherit an earlier phase's peak."""
        telemetry = Telemetry()
        meter = FakeMeter()
        telemetry.register(meter)
        with telemetry.phase("first"):
            meter.bump(100)
            meter.drop(100)
        with telemetry.phase("second"):
            meter.bump(2)
        assert telemetry["second"].peaks["gauge"] == 2

    def test_same_phase_merges(self):
        telemetry = Telemetry()
        meter = FakeMeter()
        telemetry.register(meter)
        for bump in (10, 20):
            with telemetry.phase("sort"):
                meter.bump(bump)
                meter.drop(bump)
        assert telemetry["sort"].counters["bytes"] == 30
        assert telemetry["sort"].peaks["gauge"] == 20  # max, not sum
        assert [s.name for s in telemetry] == ["sort"]

    def test_wall_time_positive_and_total(self):
        telemetry = Telemetry()
        with telemetry.phase("a"):
            pass
        with telemetry.phase("b"):
            pass
        assert telemetry.total_wall_seconds() >= 0
        assert "a" in telemetry and "c" not in telemetry
        assert len(telemetry.phases) == 2

    def test_report_contains_phases(self):
        telemetry = Telemetry()
        with telemetry.phase("reduce"):
            pass
        report = telemetry.report()
        assert "reduce" in report and "total" in report


class ExplodingMeter(FakeMeter):
    """A meter whose counters() can be made to raise mid-run."""

    def __init__(self):
        super().__init__()
        self.explode = False

    def counters(self):
        if self.explode:
            raise RuntimeError("meter broke")
        return super().counters()


class TestPhaseFailure:
    def test_failed_phase_tagged_and_kept_out_of_totals(self):
        telemetry = Telemetry()
        meter = FakeMeter()
        telemetry.register(meter)
        with pytest.raises(ValueError):
            with telemetry.phase("sort"):
                meter.bump(10)
                raise ValueError("boom")
        assert "sort" not in telemetry
        assert telemetry.total_wall_seconds() == 0.0
        (failed,) = telemetry.failed
        assert failed.error == "ValueError: boom"
        # Best-effort snapshot still captured what the phase did.
        assert failed.counters["bytes"] == 10
        assert "FAILED(ValueError: boom)" in failed.summary()
        assert "FAILED" in telemetry.report()

    def test_failed_phase_does_not_leak_active_context(self):
        telemetry = Telemetry()
        with pytest.raises(ValueError):
            with telemetry.phase("map"):
                raise ValueError("boom")
        with telemetry.phase("map"):
            pass
        assert telemetry["map"].error is None
        assert len(telemetry.failed) == 1

    def test_broken_meter_does_not_mask_phase_exception(self):
        telemetry = Telemetry()
        meter = ExplodingMeter()
        telemetry.register(meter)
        with pytest.raises(ValueError, match="original"):
            with telemetry.phase("reduce"):
                meter.explode = True
                raise ValueError("original")
        (failed,) = telemetry.failed
        assert failed.error == "ValueError: original"

    def test_broken_meter_on_success_propagates_without_leaking(self):
        telemetry = Telemetry()
        meter = ExplodingMeter()
        telemetry.register(meter)
        with pytest.raises(RuntimeError, match="meter broke"):
            with telemetry.phase("load"):
                meter.explode = True
        # The context came off the active stack despite the snapshot error,
        # so later phases still work.
        meter.explode = False
        with telemetry.phase("load"):
            pass
        assert telemetry["load"].error is None

    def test_inner_failure_leaves_outer_phase_intact(self):
        telemetry = Telemetry()
        meter = FakeMeter()
        telemetry.register(meter)
        with telemetry.phase("outer"):
            meter.bump(3)
            with pytest.raises(ValueError):
                with telemetry.phase("inner"):
                    meter.bump(4)
                    raise ValueError("inner boom")
            meter.bump(5)
        assert "inner" not in telemetry
        assert telemetry["outer"].counters["bytes"] == 12
        assert telemetry.failed[0].name == "inner"


class TestFormatting:
    def test_format_metric_is_unit_aware(self):
        assert format_metric("host_bytes", 2048.0) == "2.05 kB"
        assert "s" in format_metric("par_busy_s", 1.5)
        assert format_metric("queue_depth", 7.0) == "7"

    def test_summary_does_not_mislabel_non_byte_gauges(self):
        stats = PhaseStats("sort", 1.0,
                           peaks={"queue_depth": 7.0, "host_bytes": 2048.0})
        summary = stats.summary()
        assert "peak_queue_depth=7 " in summary + " "
        assert "peak_host_bytes=2.05 kB" in summary


class TestOverlapHelper:
    def test_shared_formula(self):
        assert overlap_saved_s({"par_busy_s": 5.0, "par_wait_s": 2.0}) == 3.0
        assert overlap_saved_s({"par_busy_s": 1.0, "par_wait_s": 4.0}) == 0.0
        assert overlap_saved_s({}) == 0.0

    def test_phase_stats_delegates(self):
        stats = PhaseStats("x", 0.0,
                           {"par_busy_s": 2.5, "par_wait_s": 0.5})
        assert stats.overlap_saved_s == \
            overlap_saved_s(stats.counters) == 2.0


class TestPhaseStats:
    def test_merge_adds_and_maxes(self):
        a = PhaseStats("x", 1.0, {"n": 1.0}, {"p": 5.0})
        b = PhaseStats("x", 2.0, {"n": 2.0, "m": 1.0}, {"p": 3.0, "q": 7.0})
        merged = a.merged_with(b)
        assert merged.wall_seconds == 3.0
        assert merged.counters == {"n": 3.0, "m": 1.0}
        assert merged.peaks == {"p": 5.0, "q": 7.0}

    def test_sim_seconds_reads_counter(self):
        stats = PhaseStats("x", 0.0, {"sim_seconds": 4.5})
        assert stats.sim_seconds == 4.5
        assert PhaseStats("y").sim_seconds == 0.0

    def test_summary_mentions_name(self):
        assert "sort" in PhaseStats("sort", 1.0).summary()


def test_unknown_phase_lookup_raises():
    with pytest.raises(KeyError):
        Telemetry()["nope"]

"""Units: size and duration parsing/formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.units import (format_count, format_duration, format_size,
                         parse_duration, parse_size)


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("4096") == 4096
        assert parse_size(4096) == 4096
        assert parse_size(4096.7) == 4096

    @pytest.mark.parametrize("text,expected", [
        ("1 kB", 10**3),
        ("12 GB", 12 * 10**9),
        ("6GiB", 6 * 2**30),
        ("0.5 TB", 5 * 10**11),
        ("128 gb", 128 * 10**9),
        ("85MB", 85 * 10**6),
    ])
    def test_suffixes(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "GB", "12 XB", "twelve GB"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ConfigError):
            parse_size(bad)


class TestFormatSize:
    @pytest.mark.parametrize("nbytes,expected", [
        (0, "0 B"),
        (999, "999 B"),
        (12_000_000_000, "12.00 GB"),
        (398_000_000_000, "398.00 GB"),
        (1_500, "1.50 kB"),
    ])
    def test_rendering(self, nbytes, expected):
        assert format_size(nbytes) == expected

    def test_negative(self):
        assert format_size(-2_000_000) == "-2.00 MB"

    @given(st.integers(min_value=1, max_value=10**14))
    def test_roundtrip_within_precision(self, nbytes):
        rendered = format_size(nbytes, precision=6)
        parsed = parse_size(rendered)
        assert abs(parsed - nbytes) <= max(1, nbytes * 1e-5)


class TestDurations:
    @pytest.mark.parametrize("text,expected", [
        ("25s", 25.0),
        ("9m 36s", 576.0),
        ("2h 23m 55s", 8635.0),
        ("16h 21m 09s", 58869.0),
        ("1h", 3600.0),
        ("90", 90.0),
    ])
    def test_parse(self, text, expected):
        assert parse_duration(text) == expected

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigError):
            parse_duration("soon")

    @pytest.mark.parametrize("seconds,expected", [
        (25, "25s"),
        (576, "9m 36s"),
        (8635, "2h 23m 55s"),
        (58869, "16h 21m 09s"),
        (0.25, "0.25s"),
    ])
    def test_format(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_format_negative(self):
        assert format_duration(-90) == "-1m 30s"

    @given(st.integers(min_value=1, max_value=10**6))
    def test_roundtrip_whole_seconds(self, seconds):
        assert parse_duration(format_duration(seconds)) == seconds


def test_format_count():
    assert format_count(1_247_518_392) == "1,247,518,392"

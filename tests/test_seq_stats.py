"""Length statistics: N50 and friends."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import DatasetError
from repro.seq.stats import assembly_stats, gc_content, n50, nx

lengths_strategy = st.lists(st.integers(1, 10_000), min_size=1, max_size=200)


class TestN50:
    def test_known_values(self):
        # 30+40 = 70 >= half of 100
        assert n50([10, 20, 30, 40]) == 30
        assert n50([100]) == 100
        assert n50([1, 1, 1, 1]) == 1

    def test_empty(self):
        assert n50([]) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(DatasetError):
            n50([5, 0])

    @given(lengths_strategy)
    def test_definition(self, lengths):
        """N50 is the largest L such that contigs >= L cover half the total."""
        value = n50(lengths)
        arr = np.array(lengths)
        assert value in lengths
        assert arr[arr >= value].sum() * 2 >= arr.sum()
        bigger = arr[arr > value]
        if bigger.size:
            assert bigger.sum() * 2 < arr.sum()

    @given(lengths_strategy)
    def test_bounded_by_extremes(self, lengths):
        assert min(lengths) <= n50(lengths) <= max(lengths)


class TestNx:
    def test_n90_leq_n50(self):
        lengths = [5, 10, 20, 40, 80]
        assert nx(lengths, 0.9) <= n50(lengths)

    def test_fraction_validation(self):
        with pytest.raises(DatasetError):
            nx([10], 1.0)

    @given(lengths_strategy, st.floats(0.05, 0.95))
    def test_monotone_in_fraction(self, lengths, fraction):
        assert nx(lengths, fraction) >= nx(lengths, min(0.99, fraction + 0.04))


class TestGcContent:
    def test_known(self):
        assert gc_content(np.array([1, 2, 1, 2], dtype=np.uint8)) == 1.0
        assert gc_content(np.array([0, 3], dtype=np.uint8)) == 0.0
        assert gc_content(np.array([], dtype=np.uint8)) == 0.0


class TestAssemblyStats:
    def test_fields(self):
        stats = assembly_stats([10, 20, 30])
        assert stats["n_contigs"] == 3
        assert stats["total_bases"] == 60
        assert stats["max_contig"] == 30
        assert stats["n50"] == 20 or stats["n50"] == 30

    def test_empty(self):
        stats = assembly_stats([])
        assert stats["n_contigs"] == 0 and stats["n50"] == 0

"""Legacy shim: the offline environment lacks `wheel`, so editable installs
go through `setup.py develop` (`pip install -e . --no-use-pep517`)."""
from setuptools import setup

setup()
